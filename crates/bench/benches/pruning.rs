//! Criterion benchmark: the three §5.1 pruning strategies (plus the
//! composite policy) — cost of pruning a large tree to half its size, and
//! post-pruning prediction cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cluseq_datagen::ClusterModel;
use cluseq_pst::{PruneStrategy, Pst, PstParams};
use cluseq_seq::Sequence;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn grown_tree(strategy: PruneStrategy) -> Pst {
    let mut rng = StdRng::seed_from_u64(5);
    let model = ClusterModel::new(60, 21);
    let mut pst = Pst::new(
        60,
        PstParams::default()
            .with_max_depth(10)
            .with_significance(4)
            .with_prune_strategy(strategy),
    );
    for i in 0..20 {
        let seq: Sequence = model.sample_sequence(800 + i * 10, &mut rng);
        pst.add_sequence(&seq);
    }
    pst
}

fn bench_prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("prune_to_half");
    for strategy in [
        PruneStrategy::SmallestCount,
        PruneStrategy::LongestLabel,
        PruneStrategy::ExpectedVector,
        PruneStrategy::Composite,
    ] {
        group.bench_with_input(
            BenchmarkId::new("strategy", format!("{strategy:?}")),
            &strategy,
            |b, &strategy| {
                b.iter_batched(
                    || grown_tree(strategy),
                    |mut pst| {
                        let target = pst.bytes() / 2;
                        black_box(pst.prune_to(target))
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_predict_after_prune(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict_after_prune");
    let mut rng = StdRng::seed_from_u64(9);
    let probe = ClusterModel::new(60, 21).sample_sequence(256, &mut rng);
    for strategy in [PruneStrategy::SmallestCount, PruneStrategy::ExpectedVector] {
        let mut pst = grown_tree(strategy);
        let target = pst.bytes() / 2;
        pst.prune_to(target);
        group.bench_with_input(
            BenchmarkId::new("strategy", format!("{strategy:?}")),
            &strategy,
            |b, _| {
                let symbols = probe.symbols();
                b.iter(|| {
                    let mut acc = 0.0;
                    for i in 0..symbols.len() {
                        acc += pst.raw_predict(&symbols[..i], symbols[i]);
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_prune, bench_predict_after_prune);
criterion_main!(benches);
