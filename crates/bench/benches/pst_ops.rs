//! Criterion micro-benchmarks for the probabilistic suffix tree: segment
//! insertion throughput, prediction-node lookup, and conditional
//! prediction, across tree depths and alphabet sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cluseq_datagen::ClusterModel;
use cluseq_pst::{Pst, PstParams};
use cluseq_seq::Sequence;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_seq(alphabet: usize, len: usize, seed: u64) -> Sequence {
    let mut rng = StdRng::seed_from_u64(seed);
    ClusterModel::new(alphabet, seed).sample_sequence(len, &mut rng)
}

fn bench_insertion(c: &mut Criterion) {
    let mut group = c.benchmark_group("pst_insert");
    for &depth in &[4usize, 8, 12] {
        let seq = sample_seq(100, 1000, 7);
        group.throughput(Throughput::Elements(seq.len() as u64));
        group.bench_with_input(BenchmarkId::new("depth", depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut pst = Pst::new(
                    100,
                    PstParams::default()
                        .with_max_depth(depth)
                        .with_significance(5),
                );
                pst.add_sequence(black_box(&seq));
                black_box(pst.node_count())
            })
        });
    }
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let mut group = c.benchmark_group("pst_predict");
    for &alphabet in &[20usize, 100] {
        let train = sample_seq(alphabet, 5000, 11);
        let probe = sample_seq(alphabet, 256, 13);
        let mut pst = Pst::new(
            alphabet,
            PstParams::default().with_max_depth(8).with_significance(5),
        );
        pst.add_sequence(&train);
        group.throughput(Throughput::Elements(probe.len() as u64));
        group.bench_with_input(BenchmarkId::new("alphabet", alphabet), &alphabet, |b, _| {
            let symbols = probe.symbols();
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..symbols.len() {
                    acc += pst.raw_predict(&symbols[..i], symbols[i]);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_prediction_node_walk(c: &mut Criterion) {
    let train = sample_seq(50, 5000, 17);
    let probe = sample_seq(50, 256, 19);
    let mut pst = Pst::new(
        50,
        PstParams::default().with_max_depth(12).with_significance(3),
    );
    pst.add_sequence(&train);
    c.bench_function("pst_prediction_node_walk", |b| {
        let symbols = probe.symbols();
        b.iter(|| {
            let mut acc = 0u32;
            for i in 1..symbols.len() {
                acc = acc.wrapping_add(pst.prediction_node(&symbols[..i]).0);
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_insertion,
    bench_prediction,
    bench_prediction_node_walk
);
criterion_main!(benches);
