//! Criterion benchmark: per-pair cost of the baseline distance/similarity
//! primitives — the microscopic version of Table 2's response-time column.
//! Expected ordering per pair: q-gram cosine < edit distance (full) <
//! block-edit (greedy LCS cover); the banded variant sits below full ED
//! for near pairs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cluseq_baselines::qgram::QgramProfile;
use cluseq_baselines::{
    banded_edit_distance, block_edit_distance, cosine_similarity, edit_distance,
};
use cluseq_datagen::ProteinFamilySpec;
use cluseq_seq::Symbol;

fn pair() -> (Vec<Symbol>, Vec<Symbol>) {
    let db = ProteinFamilySpec {
        families: 1,
        size_scale: 0.01,
        seq_len: (200, 200),
        ..Default::default()
    }
    .generate();
    (
        db.sequence(0).iter().collect(),
        db.sequence(1).iter().collect(),
    )
}

fn bench_distances(c: &mut Criterion) {
    let (a, b) = pair();
    let mut group = c.benchmark_group("pairwise_distance");

    group.bench_function("edit_distance_full", |bch| {
        bch.iter(|| black_box(edit_distance(&a, &b)))
    });
    for &band in &[8usize, 32] {
        group.bench_with_input(
            BenchmarkId::new("edit_distance_banded", band),
            &band,
            |bch, &band| bch.iter(|| black_box(banded_edit_distance(&a, &b, band))),
        );
    }
    group.bench_function("block_edit_greedy_cover", |bch| {
        bch.iter(|| black_box(block_edit_distance(&a, &b, 3)))
    });
    // The LCS primitive inside the block-edit cover: quadratic DP vs the
    // linear suffix automaton.
    group.bench_function("lcs_dp_quadratic", |bch| {
        bch.iter(|| {
            let mut best = 0usize;
            let mut prev = vec![0usize; b.len() + 1];
            let mut cur = vec![0usize; b.len() + 1];
            for &sa in &a {
                for (j, &sb) in b.iter().enumerate() {
                    cur[j + 1] = if sa == sb { prev[j] + 1 } else { 0 };
                    best = best.max(cur[j + 1]);
                }
                std::mem::swap(&mut prev, &mut cur);
            }
            black_box(best)
        })
    });
    group.bench_function("lcs_suffix_automaton", |bch| {
        bch.iter(|| {
            black_box(
                cluseq_baselines::SuffixAutomaton::from_sequence(&a)
                    .lcs(&b)
                    .map_or(0, |(l, ..)| l),
            )
        })
    });
    group.bench_function("qgram_profile_build", |bch| {
        bch.iter(|| black_box(QgramProfile::from_sequence(&a, 3).distinct_grams()))
    });
    let pa = QgramProfile::from_sequence(&a, 3);
    let pb = QgramProfile::from_sequence(&b, 3);
    group.bench_function("qgram_cosine", |bch| {
        bch.iter(|| black_box(cosine_similarity(&pa, &pb)))
    });
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
