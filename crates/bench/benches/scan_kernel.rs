//! The `--scan-kernel` matrix on the similarity scan: interpreted tree
//! walk, compiled automaton, batched lane-interleaved driver, and the
//! quantized i16 table (single and batched).
//!
//! Each group member is one grid point of [`cluseq_bench::scan_kernel`]:
//! an alphabet size × average probe length, with throughput in probe
//! symbols so Criterion reports the per-symbol cost the kernel changes.
//! The recorded trajectory variant of this measurement is
//! `cargo run --release -p cluseq-bench --bin bench_scan`, which emits
//! `BENCH_scan.json` from the very same fixtures.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cluseq_bench::scan_kernel::{configs, ScanFixture};

fn bench_scan_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_kernel");
    for cfg in configs() {
        let fx = ScanFixture::build(cfg, 32);
        group.throughput(Throughput::Elements(fx.symbols() as u64));
        group.bench_with_input(BenchmarkId::new("interpreted", cfg), &fx, |b, fx| {
            b.iter(|| black_box(fx.run_interpreted()))
        });
        group.bench_with_input(BenchmarkId::new("compiled", cfg), &fx, |b, fx| {
            b.iter(|| black_box(fx.run_compiled()))
        });
        group.bench_with_input(BenchmarkId::new("batched", cfg), &fx, |b, fx| {
            b.iter(|| black_box(fx.run_batched()))
        });
        group.bench_with_input(BenchmarkId::new("quantized", cfg), &fx, |b, fx| {
            b.iter(|| black_box(fx.run_quantized()))
        });
        group.bench_with_input(BenchmarkId::new("quantized_batched", cfg), &fx, |b, fx| {
            b.iter(|| black_box(fx.run_quantized_batched()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan_kernel);
criterion_main!(benches);
