//! Criterion benchmark: the X/Y/Z similarity dynamic program (one linear
//! scan, §4.3) against the brute-force O(l²) all-segments evaluation it
//! replaces — the paper's efficiency claim for the similarity measure.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cluseq_core::{max_similarity, max_similarity_pst};
use cluseq_datagen::ClusterModel;
use cluseq_pst::{ConditionalModel, Pst, PstParams};
use cluseq_seq::{BackgroundModel, Sequence, Symbol};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fixture(len: usize) -> (Pst, BackgroundModel, Sequence) {
    let mut rng = StdRng::seed_from_u64(3);
    let model = ClusterModel::new(40, 9);
    let train = model.sample_sequence(4000, &mut rng);
    let probe = model.sample_sequence(len, &mut rng);
    let mut pst = Pst::new(
        40,
        PstParams::default().with_max_depth(8).with_significance(5),
    );
    pst.add_sequence(&train);
    let bg = BackgroundModel::fit(40, [&train]);
    (pst, bg, probe)
}

/// Brute force: evaluate every segment independently (what the DP avoids).
fn brute_force(pst: &Pst, bg: &BackgroundModel, seq: &[Symbol]) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for start in 0..seq.len() {
        let mut acc = 0.0;
        for i in start..seq.len() {
            acc += pst.predict(&seq[..i], seq[i]).ln() - bg.prob(seq[i]).ln();
            best = best.max(acc);
        }
    }
    best
}

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    for &len in &[64usize, 256, 1024] {
        let (pst, bg, probe) = fixture(len);
        group.throughput(Throughput::Elements(len as u64));
        // Per-position root walk (O(l·L))…
        group.bench_with_input(BenchmarkId::new("dp_root_walk", len), &len, |b, _| {
            b.iter(|| black_box(max_similarity(&pst, &bg, probe.symbols()).log_sim))
        });
        // …vs the auxiliary-link incremental scanner (O(l) amortized).
        group.bench_with_input(BenchmarkId::new("dp_aux_links", len), &len, |b, _| {
            b.iter(|| black_box(max_similarity_pst(&pst, &bg, probe.symbols()).log_sim))
        });
        // The quadratic brute force becomes unreasonable quickly; keep it
        // to the small sizes so the comparison is visible but cheap.
        if len <= 256 {
            group.bench_with_input(BenchmarkId::new("brute_force", len), &len, |b, _| {
                b.iter(|| black_box(brute_force(&pst, &bg, probe.symbols())))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_similarity);
criterion_main!(benches);
