//! Shared harness for the experiment-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! CLUSEQ paper: it builds the (scaled) workload, runs the algorithms,
//! and prints the paper's reported numbers next to ours. Absolute response
//! times differ (the paper ran a 300 MHz Sun Ultra 10 at 10–100× our data
//! scale); the *shape* — who wins, by what rough factor, where the knees
//! fall — is the reproduction target. Pass `--scale <f>` to grow or
//! shrink workloads (1.0 = the defaults chosen for a laptop-class
//! machine), and `--full` for the paper's original sizes (hours of CPU).

use cluseq_core::{Cluseq, CluseqOutcome, CluseqParams};
use cluseq_eval::{Confusion, MatchStrategy};
use cluseq_seq::SequenceDatabase;

pub mod scan_kernel;

/// Workload scaling parsed from the command line.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplier on the default (laptop-scale) workload sizes.
    pub factor: f64,
    /// Whether `--full` (paper-scale) was requested.
    pub full: bool,
    /// RNG seed override.
    pub seed: u64,
}

impl Scale {
    /// Parses `--scale <f>`, `--full`, and `--seed <n>` from `std::env`.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = Self {
            factor: 1.0,
            full: false,
            seed: 42,
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    scale.factor = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--scale needs a number"));
                    i += 1;
                }
                "--seed" => {
                    scale.seed = args
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--seed needs an integer"));
                    i += 1;
                }
                "--full" => scale.full = true,
                _ => {}
            }
            i += 1;
        }
        scale
    }

    /// Scales a default count, with a floor of `min`.
    pub fn count(&self, default: usize, full: usize, min: usize) -> usize {
        if self.full {
            full
        } else {
            ((default as f64 * self.factor) as usize).max(min)
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

/// The process's peak resident set size in bytes — `VmHWM` from
/// `/proc/self/status`. `None` where procfs is unavailable (non-Linux).
///
/// The kernel reports a *high-water mark*: the value is monotone over the
/// process lifetime. A bench that times several configurations therefore
/// runs them in ascending size order, so the reading taken after each
/// configuration is an honest bound for that configuration.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Extra argument lookup for experiment-specific flags (e.g. `--axis`).
pub fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Runs CLUSEQ and scores it against the database's ground truth.
pub fn run_and_score(db: &SequenceDatabase, params: CluseqParams) -> Scored {
    let start = std::time::Instant::now();
    let outcome = Cluseq::new(params).run(db);
    let elapsed = start.elapsed();
    let confusion = Confusion::new(
        &db.labels(),
        &outcome.membership_lists(),
        MatchStrategy::Hungarian,
    );
    Scored {
        accuracy: confusion.accuracy(),
        precision: confusion.macro_precision(),
        recall: confusion.macro_recall(),
        clusters: outcome.cluster_count(),
        seconds: elapsed.as_secs_f64(),
        outcome,
    }
}

/// A scored clustering run.
pub struct Scored {
    pub accuracy: f64,
    pub precision: f64,
    pub recall: f64,
    pub clusters: usize,
    pub seconds: f64,
    pub outcome: CluseqOutcome,
}

/// Scores a hard assignment (baseline output) against ground truth.
pub fn score_assignment(db: &SequenceDatabase, assignment: &[Option<usize>]) -> (f64, f64, f64) {
    let k = assignment
        .iter()
        .flatten()
        .copied()
        .max()
        .map_or(0, |m| m + 1);
    let mut clusters = vec![Vec::new(); k];
    for (i, a) in assignment.iter().enumerate() {
        if let Some(a) = a {
            clusters[*a].push(i);
        }
    }
    let c = Confusion::new(&db.labels(), &clusters, MatchStrategy::Hungarian);
    (c.accuracy(), c.macro_precision(), c.macro_recall())
}

/// Prints a fixed-width table: a header row then data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!(
                "{:<w$}  ",
                cell,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", line.trim_end());
    };
    fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("{}", "-".repeat(total));
    for row in rows {
        fmt_row(row);
    }
}

/// Formats a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Formats seconds compactly.
pub fn secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.0}ms", s * 1000.0)
    } else {
        format!("{s:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_datagen::SyntheticSpec;

    #[test]
    fn scale_count_applies_factor_and_floor() {
        let s = Scale {
            factor: 0.5,
            full: false,
            seed: 1,
        };
        assert_eq!(s.count(100, 1000, 10), 50);
        assert_eq!(s.count(10, 1000, 10), 10);
        let f = Scale {
            factor: 0.5,
            full: true,
            seed: 1,
        };
        assert_eq!(f.count(100, 1000, 10), 1000);
    }

    #[test]
    fn run_and_score_produces_consistent_numbers() {
        let db = SyntheticSpec {
            sequences: 60,
            clusters: 3,
            avg_len: 80,
            alphabet: 40,
            outlier_fraction: 0.0,
            seed: 3,
        }
        .generate();
        let scored = run_and_score(
            &db,
            CluseqParams::default()
                .with_initial_clusters(3)
                .with_significance(5)
                .with_max_depth(5),
        );
        assert!((0.0..=1.0).contains(&scored.accuracy));
        assert!(scored.seconds > 0.0);
        assert_eq!(scored.clusters, scored.outcome.cluster_count());
    }

    #[test]
    fn score_assignment_of_perfect_partition_is_one() {
        let db = SyntheticSpec {
            sequences: 20,
            clusters: 2,
            avg_len: 40,
            alphabet: 20,
            outlier_fraction: 0.0,
            seed: 5,
        }
        .generate();
        let assignment: Vec<Option<usize>> =
            db.labels().iter().map(|l| l.map(|x| x as usize)).collect();
        let (acc, p, r) = score_assignment(&db, &assignment);
        assert_eq!(acc, 1.0);
        assert_eq!(p, 1.0);
        assert_eq!(r, 1.0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_positive_and_monotone() {
        let before = peak_rss_bytes().expect("procfs available on linux");
        assert!(before > 0);
        // Touch some memory; the high-water mark must never decrease.
        let ballast = vec![1u8; 1 << 20];
        assert!(ballast.iter().map(|&b| b as usize).sum::<usize>() > 0);
        let after = peak_rss_bytes().unwrap();
        assert!(after >= before, "VmHWM is monotone: {after} >= {before}");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.825), "82.5");
        assert_eq!(secs(0.25), "250ms");
        assert_eq!(secs(12.34), "12.3s");
    }
}
