//! Shared fixture for the scan-kernel measurements: the Criterion bench
//! (`benches/scan_kernel.rs`) and the JSON trajectory runner
//! (`src/bin/bench_scan.rs`) time the same workloads, so the interactive
//! numbers and the recorded `BENCH_scan.json` trajectory are comparable.
//!
//! Each point on the grid trains one PST from a synthetic workload,
//! compiles it, and measures a full similarity pass under every
//! `--scan-kernel` — interpreted tree walk, compiled automaton, batched
//! lane-interleaved driver, and the i16 quantized table — over a held-out
//! probe set. Throughput is reported per probe *symbol*: the scan is a
//! per-symbol loop, so ns/symbol is the number the kernel actually
//! changes.

use std::fmt;

use cluseq_core::{
    max_similarity_compiled, max_similarity_compiled_batch, max_similarity_pst,
    max_similarity_quantized, max_similarity_quantized_batch, BoundedSimilarity,
};
use cluseq_datagen::SyntheticSpec;
use cluseq_pst::{CompiledPst, Pst, PstParams, QuantizedPst};
use cluseq_seq::{BackgroundModel, Symbol};

/// One measured grid point: an alphabet size × an average probe length,
/// plus the model scale (training volume, depth, significance) that sets
/// how large the compiled automaton gets.
#[derive(Debug, Clone, Copy)]
pub struct ScanConfig {
    pub alphabet: usize,
    pub avg_len: usize,
    /// Sequences used to train the PST (the probes are held out on top).
    pub training: usize,
    pub max_depth: usize,
    pub significance: u64,
}

impl ScanConfig {
    /// The original small-model grid point: 40 training sequences, depth
    /// 6, significance 5 — automatons in the hundreds-to-low-thousands of
    /// states, tables L1/L2-resident.
    pub fn small(alphabet: usize, avg_len: usize) -> Self {
        Self {
            alphabet,
            avg_len,
            training: 40,
            max_depth: 6,
            significance: 5,
        }
    }

    /// A large-model grid point: an order of magnitude more training
    /// data, deeper contexts, and a permissive significance cut — the
    /// tens-of-thousands-of-states automatons whose tables overflow cache
    /// and turn the single-sequence scan latency-bound. This is the
    /// regime the batched and quantized kernels exist for.
    pub fn large(alphabet: usize, avg_len: usize) -> Self {
        Self {
            alphabet,
            avg_len,
            training: 600,
            max_depth: 8,
            significance: 2,
        }
    }

    /// The largest grid point: double `large`'s training volume and two
    /// more context levels — protein-database scale, where even the
    /// quantized tables overflow L2 and the scan is pure memory latency.
    pub fn xxl(alphabet: usize, avg_len: usize) -> Self {
        Self {
            alphabet,
            avg_len,
            training: 1200,
            max_depth: 10,
            significance: 2,
        }
    }

    /// The scale suffix for display names: `""`/`_xl`/`_xxl`.
    fn scale_suffix(&self) -> &'static str {
        if self.training > 600 {
            "_xxl"
        } else if self.training > 40 {
            "_xl"
        } else {
            ""
        }
    }
}

impl fmt::Display for ScanConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "a{}_len{}{}",
            self.alphabet,
            self.avg_len,
            self.scale_suffix()
        )
    }
}

/// The measurement grid: small/paper-scale/large alphabets crossed with
/// short and long sequences, at all three model scales. Alphabet size
/// moves the per-node successor summation the interpreted path pays;
/// length moves how deep the scanner sits in the tree on average; model
/// scale moves the tables across the cache hierarchy — the axis the
/// batched and quantized kernels exist for, and the regime (tens of
/// thousands of states) real clustering runs spend their time in.
pub fn configs() -> Vec<ScanConfig> {
    let mut grid = Vec::new();
    for scale in [ScanConfig::small, ScanConfig::large, ScanConfig::xxl] {
        for &alphabet in &[4usize, 12, 60] {
            for &avg_len in &[50usize, 200] {
                grid.push(scale(alphabet, avg_len));
            }
        }
    }
    grid
}

/// A trained model plus held-out probes, built once per grid point.
pub struct ScanFixture {
    pub pst: Pst,
    pub compiled: CompiledPst,
    pub quantized: QuantizedPst,
    pub background: BackgroundModel,
    pub probes: Vec<Vec<Symbol>>,
}

impl ScanFixture {
    pub fn build(cfg: ScanConfig, probe_count: usize) -> Self {
        let db = SyntheticSpec {
            sequences: cfg.training + probe_count,
            clusters: 2,
            avg_len: cfg.avg_len,
            alphabet: cfg.alphabet,
            outlier_fraction: 0.0,
            seed: 71,
        }
        .generate();
        let mut pst = Pst::new(
            cfg.alphabet,
            PstParams::default()
                .with_max_depth(cfg.max_depth)
                .with_significance(cfg.significance),
        );
        let mut probes = Vec::new();
        for (i, seq, _) in db.iter() {
            if i < cfg.training {
                pst.add_sequence(seq);
            } else {
                probes.push(seq.iter().collect());
            }
        }
        let background = db.background();
        let compiled = CompiledPst::compile(&pst, &background);
        let quantized = compiled.quantize();
        Self {
            pst,
            compiled,
            quantized,
            background,
            probes,
        }
    }

    /// Total probe symbols per full pass — the throughput denominator.
    pub fn symbols(&self) -> usize {
        self.probes.iter().map(Vec::len).sum()
    }

    /// One full interpreted pass; returns a checksum so the work is live.
    pub fn run_interpreted(&self) -> f64 {
        self.probes
            .iter()
            .map(|p| max_similarity_pst(&self.pst, &self.background, p).log_sim)
            .sum()
    }

    /// One full compiled pass over the same probes.
    pub fn run_compiled(&self) -> f64 {
        self.probes
            .iter()
            .map(|p| max_similarity_compiled(&self.compiled, p).log_sim)
            .sum()
    }

    /// One full batched pass: the same compiled tables, the whole probe
    /// set handed to the lane-interleaved driver in one call so its
    /// length-grouped chunking can do its job.
    pub fn run_batched(&self) -> f64 {
        let refs: Vec<&[Symbol]> = self.probes.iter().map(Vec::as_slice).collect();
        let mut sum = 0.0;
        for verdict in max_similarity_compiled_batch(&self.compiled, &refs, None) {
            match verdict {
                BoundedSimilarity::Exact(s) => sum += s.log_sim,
                BoundedSimilarity::Pruned => unreachable!("unbounded scans never prune"),
            }
        }
        sum
    }

    /// One full quantized pass: the i16 ratio table, one probe at a time.
    pub fn run_quantized(&self) -> f64 {
        self.probes
            .iter()
            .map(|p| max_similarity_quantized(&self.quantized, p).log_sim)
            .sum()
    }

    /// One full quantized *batched* pass — the integer table under the
    /// lane-interleaved driver, the fastest configuration of the matrix.
    pub fn run_quantized_batched(&self) -> f64 {
        let refs: Vec<&[Symbol]> = self.probes.iter().map(Vec::as_slice).collect();
        let mut sum = 0.0;
        for verdict in max_similarity_quantized_batch(&self.quantized, &refs, None) {
            match verdict {
                BoundedSimilarity::Exact(s) => sum += s.log_sim,
                BoundedSimilarity::Pruned => unreachable!("unbounded scans never prune"),
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_kernels_agree_and_have_probes() {
        let fx = ScanFixture::build(ScanConfig::small(4, 50), 8);
        assert!(fx.symbols() > 0);
        assert_eq!(
            fx.run_interpreted().to_bits(),
            fx.run_compiled().to_bits(),
            "bench fixture must exercise bit-identical kernels"
        );
        assert_eq!(
            fx.run_compiled().to_bits(),
            fx.run_batched().to_bits(),
            "the batched driver must sum the same bits as the compiled scan"
        );
        assert_eq!(
            fx.run_quantized().to_bits(),
            fx.run_quantized_batched().to_bits(),
            "the quantized batch driver must sum the same bits as the single scan"
        );
        // The quantized checksum is an approximation of the exact one:
        // per-probe error is bounded, so the summed error is too.
        let bound: f64 = fx
            .probes
            .iter()
            .map(|p| fx.quantized.error_bound(p.len()))
            .sum();
        assert!(
            (fx.run_compiled() - fx.run_quantized()).abs() <= bound,
            "quantized checksum drifted past the summed error bound"
        );
    }
}
