//! Shared fixture for the scan-kernel measurements: the Criterion bench
//! (`benches/scan_kernel.rs`) and the JSON trajectory runner
//! (`src/bin/bench_scan.rs`) time the same workloads, so the interactive
//! numbers and the recorded `BENCH_scan.json` trajectory are comparable.
//!
//! Each point on the grid trains one PST from a synthetic workload,
//! compiles it, and measures a full similarity pass — interpreted tree
//! walk vs compiled automaton — over a held-out probe set. Throughput is
//! reported per probe *symbol*: the scan is a per-symbol loop, so
//! ns/symbol is the number the kernel actually changes.

use std::fmt;

use cluseq_core::{max_similarity_compiled, max_similarity_pst};
use cluseq_datagen::SyntheticSpec;
use cluseq_pst::{CompiledPst, Pst, PstParams};
use cluseq_seq::{BackgroundModel, Symbol};

/// One measured grid point: an alphabet size × an average probe length.
#[derive(Debug, Clone, Copy)]
pub struct ScanConfig {
    pub alphabet: usize,
    pub avg_len: usize,
}

impl fmt::Display for ScanConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}_len{}", self.alphabet, self.avg_len)
    }
}

/// The measurement grid: small/paper-scale/large alphabets crossed with
/// short and long sequences. Alphabet size moves the per-node successor
/// summation the interpreted path pays; length moves how deep the scanner
/// sits in the tree on average.
pub fn configs() -> Vec<ScanConfig> {
    let mut grid = Vec::new();
    for &alphabet in &[4usize, 12, 60] {
        for &avg_len in &[50usize, 200] {
            grid.push(ScanConfig { alphabet, avg_len });
        }
    }
    grid
}

/// A trained model plus held-out probes, built once per grid point.
pub struct ScanFixture {
    pub pst: Pst,
    pub compiled: CompiledPst,
    pub background: BackgroundModel,
    pub probes: Vec<Vec<Symbol>>,
}

/// Sequences used to train the PST; the rest of the workload is probes.
const TRAINING_SEQUENCES: usize = 40;

impl ScanFixture {
    pub fn build(cfg: ScanConfig, probe_count: usize) -> Self {
        let db = SyntheticSpec {
            sequences: TRAINING_SEQUENCES + probe_count,
            clusters: 2,
            avg_len: cfg.avg_len,
            alphabet: cfg.alphabet,
            outlier_fraction: 0.0,
            seed: 71,
        }
        .generate();
        let mut pst = Pst::new(
            cfg.alphabet,
            PstParams::default().with_max_depth(6).with_significance(5),
        );
        let mut probes = Vec::new();
        for (i, seq, _) in db.iter() {
            if i < TRAINING_SEQUENCES {
                pst.add_sequence(seq);
            } else {
                probes.push(seq.iter().collect());
            }
        }
        let background = db.background();
        let compiled = CompiledPst::compile(&pst, &background);
        Self {
            pst,
            compiled,
            background,
            probes,
        }
    }

    /// Total probe symbols per full pass — the throughput denominator.
    pub fn symbols(&self) -> usize {
        self.probes.iter().map(Vec::len).sum()
    }

    /// One full interpreted pass; returns a checksum so the work is live.
    pub fn run_interpreted(&self) -> f64 {
        self.probes
            .iter()
            .map(|p| max_similarity_pst(&self.pst, &self.background, p).log_sim)
            .sum()
    }

    /// One full compiled pass over the same probes.
    pub fn run_compiled(&self) -> f64 {
        self.probes
            .iter()
            .map(|p| max_similarity_compiled(&self.compiled, p).log_sim)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_kernels_agree_and_have_probes() {
        let fx = ScanFixture::build(
            ScanConfig {
                alphabet: 4,
                avg_len: 50,
            },
            8,
        );
        assert!(fx.symbols() > 0);
        assert_eq!(
            fx.run_interpreted().to_bits(),
            fx.run_compiled().to_bits(),
            "bench fixture must exercise bit-identical kernels"
        );
    }
}
