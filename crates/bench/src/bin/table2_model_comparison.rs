//! **Table 2** — model comparison on the protein database.
//!
//! Paper (8000 proteins, 30 families, Sun Ultra 10 @ 300 MHz):
//!
//! | Model  | Correct % | Time (s) |
//! |--------|-----------|----------|
//! | CLUSEQ | 82        | 144      |
//! | ED     | 23        | 487      |
//! | EDBO   | 80        | 13754    |
//! | HMM    | 81        | 3117     |
//! | q-gram | 75        | 132      |
//!
//! Shape to reproduce: CLUSEQ and q-gram are the fast pair with CLUSEQ
//! clearly more accurate; ED is both slower and far less accurate; EDBO
//! and HMM approach CLUSEQ's accuracy at a large multiple of its time.
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin table2_model_comparison [--scale f] [--full]
//! ```

use cluseq_baselines::block_edit::BlockEditCache;
use cluseq_baselines::{
    block_edit_distance, edit_distance, k_medoids, qgram::qgram_cluster, HmmClustering,
};
use cluseq_bench::{pct, print_table, run_and_score, score_assignment, secs, Scale};
use cluseq_core::CluseqParams;
use cluseq_datagen::ProteinFamilySpec;
use cluseq_eval::Stopwatch;

fn main() {
    let scale = Scale::from_env();
    let families = if scale.full { 30 } else { 10 };
    let spec = ProteinFamilySpec {
        families,
        size_scale: if scale.full { 1.0 } else { 0.04 * scale.factor },
        seq_len: if scale.full { (150, 400) } else { (120, 250) },
        motifs_per_family: 2,
        mutation_rate: 0.10,
        seed: scale.seed.wrapping_add(2003),
        ..Default::default()
    };
    let db = spec.generate();
    let k = families;
    // The paper's c = 30 matches families of 140–900 members; at reduced
    // scale the statistically equivalent significance threshold shrinks
    // with the data volume.
    // At full scale c = 30 also drives consolidation (the paper couples
    // them); at reduced scale the statistically equivalent c is ~1 and the
    // consolidation minimum is set separately.
    let (c, min_exclusive) = if scale.full { (30, 30) } else { (1, 3) };
    println!(
        "protein database: {} sequences, {} families, avg len {:.0} (c = {c})",
        db.len(),
        db.class_count(),
        db.avg_len()
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let paper = [
        ("CLUSEQ", 82.0, 144.0),
        ("ED", 23.0, 487.0),
        ("EDBO", 80.0, 13754.0),
        ("HMM", 81.0, 3117.0),
        ("q-gram", 75.0, 132.0),
    ];
    let mut measured: Vec<(f64, f64)> = Vec::new();

    // --- CLUSEQ: the paper deliberately starts from wrong k and t. ---
    let scored = run_and_score(
        &db,
        CluseqParams::default()
            .with_initial_clusters(10)
            .with_initial_threshold(1.0005)
            .with_significance(c as u64)
            .with_min_exclusive(min_exclusive)
            .with_max_depth(8)
            .with_seed(scale.seed),
    );
    measured.push((scored.accuracy, scored.seconds));
    eprintln!(
        "CLUSEQ done: {} clusters, final t = {:.1}, {}",
        scored.clusters,
        scored.outcome.final_t(),
        secs(scored.seconds)
    );

    // --- ED: k-medoids over full Levenshtein. ---
    let (ed_assign, ed_time) = Stopwatch::time(|| {
        let mut cache = BlockEditCache::new();
        k_medoids(
            db.len(),
            k,
            |i, j| {
                cache.get_or_compute(i, j, || {
                    edit_distance(db.sequence(i).symbols(), db.sequence(j).symbols())
                }) as f64
            },
            10,
            scale.seed,
        )
    });
    let (ed_acc, _, _) = score_assignment(&db, &ed_assign);
    measured.push((ed_acc, ed_time.as_secs_f64()));
    eprintln!("ED done: {}", secs(ed_time.as_secs_f64()));

    // --- EDBO: k-medoids over the greedy block-cover distance. ---
    let (bed_assign, bed_time) = Stopwatch::time(|| {
        let mut cache = BlockEditCache::new();
        k_medoids(
            db.len(),
            k,
            |i, j| {
                // Length-normalized: raw block distance is dominated by
                // |len_i - len_j| leftovers and clusters by length.
                let d = cache.get_or_compute(i, j, || {
                    block_edit_distance(db.sequence(i).symbols(), db.sequence(j).symbols(), 3)
                });
                d as f64 / (db.sequence(i).len() + db.sequence(j).len()) as f64
            },
            10,
            scale.seed,
        )
    });
    let (bed_acc, _, _) = score_assignment(&db, &bed_assign);
    measured.push((bed_acc, bed_time.as_secs_f64()));
    eprintln!("EDBO done: {}", secs(bed_time.as_secs_f64()));

    // --- HMM: per-cluster models (paper: 30 states). ---
    let states = if scale.full { 30 } else { 15 };
    let (hmm_assign, hmm_time) = Stopwatch::time(|| {
        HmmClustering {
            states,
            em_rounds: 4,
            bw_iters: 5,
            seed: scale.seed,
        }
        .cluster(&db, k)
    });
    let (hmm_acc, _, _) = score_assignment(&db, &hmm_assign);
    measured.push((hmm_acc, hmm_time.as_secs_f64()));
    eprintln!("HMM done: {}", secs(hmm_time.as_secs_f64()));

    // --- q-gram: spherical k-means over 3-gram profiles. ---
    let (q_assign, q_time) = Stopwatch::time(|| qgram_cluster(&db, 3, k, 25, scale.seed));
    let (q_acc, _, _) = score_assignment(&db, &q_assign);
    measured.push((q_acc, q_time.as_secs_f64()));
    eprintln!("q-gram done: {}", secs(q_time.as_secs_f64()));

    for ((name, p_acc, p_time), (m_acc, m_time)) in paper.iter().zip(&measured) {
        rows.push(vec![
            name.to_string(),
            format!("{p_acc:.0}"),
            pct(*m_acc),
            format!("{p_time:.0}"),
            secs(*m_time),
        ]);
    }
    print_table(
        "Table 2: model comparison (paper vs measured)",
        &[
            "Model",
            "paper correct %",
            "ours correct %",
            "paper time (s)",
            "ours time",
        ],
        &rows,
    );
}
