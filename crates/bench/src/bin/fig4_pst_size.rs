//! **Figure 4** — effect of the per-cluster PST memory budget.
//!
//! Paper (100k sequences × 1000 symbols, 100 symbols, 50 clusters):
//! precision/recall improve with the budget and plateau at ~5 MB per tree
//! (Figure 4a), while response time keeps growing with tree size
//! (Figure 4b). Shape to reproduce: a quality knee followed by a plateau,
//! and monotone-ish time growth.
//!
//! Budgets are scaled to the reduced workload (the knee position scales
//! with the data volume a tree must absorb).
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin fig4_pst_size [--scale f] [--full]
//! ```

use cluseq_bench::{pct, print_table, run_and_score, secs, Scale};
use cluseq_core::CluseqParams;
use cluseq_datagen::SyntheticSpec;

fn main() {
    let scale = Scale::from_env();
    let spec = SyntheticSpec {
        sequences: scale.count(800, 100_000, 100),
        clusters: scale.count(10, 50, 3),
        avg_len: scale.count(200, 1000, 50),
        alphabet: 100,
        outlier_fraction: 0.05,
        seed: scale.seed,
    };
    let db = spec.generate();
    println!(
        "synthetic database: {} sequences, {} clusters, avg len {:.0}",
        db.len(),
        spec.clusters,
        db.avg_len()
    );

    // Budget sweep: fractions of an unbounded run's typical tree size.
    let budgets: &[usize] = if scale.full {
        &[1 << 20, 2 << 20, 5 << 20, 10 << 20, 20 << 20]
    } else {
        &[8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 512 << 10]
    };

    let mut rows = Vec::new();
    for &budget in budgets {
        let scored = run_and_score(
            &db,
            CluseqParams::default()
                .with_initial_clusters(spec.clusters)
                // Warm start near the converged threshold (the paper's own
                // sensitivity experiments start at the true t); a cold
                // 1.0005 start under heavy noise can deadlock in a
                // contaminated monopoly cluster at this reduced scale —
                // see EXPERIMENTS.md.
                .with_initial_threshold(3000.0)
                .with_significance(10)
                .with_max_depth(6)
                .with_max_pst_bytes(budget)
                .with_seed(scale.seed),
        );
        rows.push(vec![
            format!("{} KiB", budget >> 10),
            pct(scored.precision),
            pct(scored.recall),
            format!("{}", scored.clusters),
            secs(scored.seconds),
        ]);
        eprintln!("budget {} KiB done", budget >> 10);
    }
    print_table(
        "Figure 4: PST memory budget vs quality (a) and response time (b)",
        &["budget/tree", "precision %", "recall %", "clusters", "time"],
        &rows,
    );
    println!(
        "\npaper shape: quality plateaus beyond the knee (theirs: 5 MB at \
         100k x 1000 symbols); response time keeps growing with the budget."
    );
}
