//! Records the iteration-loop perf trajectory as `BENCH_iter.json`:
//! per-phase median wall-times plus the tracing-overhead measurement.
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin bench_iter \
//!     [--quick] [--out BENCH_iter.json]
//! ```
//!
//! Three timed configurations of the same clustering workload:
//!
//! * **baseline** — `trace = None`, split into two interleaved sample
//!   sets A and B. Both run identical code, so `|median(A) −
//!   median(B)| / median(B)` is an A/A measurement: it bounds what the
//!   disabled-trace path can possibly cost *and* calibrates the noise
//!   floor of this machine. The acceptance target is < 2%.
//! * **traced (in-memory)** — a full [`cluseq_core::TraceSession`]
//!   registry with spans, counters, and histograms, but no JSONL file or
//!   exporter. Its overhead over baseline is the real cost of enabling
//!   live metrics.
//! * **traced (jsonl)** — the same plus the crash-safe JSONL sink with
//!   its per-iteration fsync, the most expensive configuration.
//!
//! Samples are interleaved round-robin (A, B, mem, jsonl, A, B, …) so
//! thermal and frequency drift hits every configuration equally. The
//! per-phase table comes from the in-memory sessions' span aggregates —
//! the subsystem measuring itself.
//!
//! With `--incremental`, a fourth section compares the same workload with
//! the incremental iteration engine off vs. on (interleaved samples,
//! byte-identity asserted) and records the `pairs_scored` /
//! `pairs_reused` counter evidence in the JSON.

use std::time::Instant;

use cluseq_bench::{flag_value, peak_rss_bytes, print_table, Scale};
use cluseq_core::telemetry::NoopObserver;
use cluseq_core::trace::{Counter, Phase, TraceConfig, TraceSession};
use cluseq_core::{Cluseq, CluseqParams};
use cluseq_datagen::SyntheticSpec;
use cluseq_seq::SequenceDatabase;

/// Median of a sample; the sample is consumed (sorted in place).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

fn workload(scale: &Scale, quick: bool) -> (SequenceDatabase, CluseqParams) {
    let sequences = if quick {
        120
    } else {
        scale.count(400, 2000, 120)
    };
    let db = SyntheticSpec {
        sequences,
        clusters: 4,
        avg_len: 100,
        alphabet: 20,
        outlier_fraction: 0.05,
        seed: scale.seed,
    }
    .generate();
    let params = CluseqParams::default()
        .with_initial_clusters(2)
        .with_significance(5)
        .with_max_depth(8)
        .with_max_iterations(if quick { 4 } else { 8 })
        .with_seed(scale.seed);
    (db, params)
}

fn run_once(runner: &Cluseq, db: &SequenceDatabase, trace: Option<&TraceSession>) -> f64 {
    let start = Instant::now();
    let outcome = runner.run_traced(db, &mut NoopObserver, trace);
    // Keep the run live past optimization.
    assert!(outcome.cluster_count() < usize::MAX);
    start.elapsed().as_secs_f64()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let incremental = std::env::args().any(|a| a == "--incremental");
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_iter.json".to_string());
    let scale = Scale::from_env();
    let reps = if quick { 3 } else { 9 };

    let (db, params) = workload(&scale, quick);
    let runner = Cluseq::new(params);
    let jsonl_dir = std::env::temp_dir().join(format!("bench_iter-{}", std::process::id()));
    std::fs::create_dir_all(&jsonl_dir).expect("create temp dir");

    // Warmup: one pass of each configuration.
    run_once(&runner, &db, None);
    run_once(&runner, &db, Some(&TraceSession::in_memory()));

    let mut base_a = Vec::with_capacity(reps);
    let mut base_b = Vec::with_capacity(reps);
    let mut traced_mem = Vec::with_capacity(reps);
    let mut traced_jsonl = Vec::with_capacity(reps);
    let mut phase_totals: Vec<Vec<f64>> = vec![Vec::with_capacity(reps); Phase::ALL.len()];
    let mut phase_counts = vec![0u64; Phase::ALL.len()];
    for rep in 0..reps {
        base_a.push(run_once(&runner, &db, None));
        base_b.push(run_once(&runner, &db, None));

        let session = TraceSession::in_memory();
        traced_mem.push(run_once(&runner, &db, Some(&session)));
        for (i, &phase) in Phase::ALL.iter().enumerate() {
            let stats = session.phase_stats(phase);
            phase_totals[i].push(stats.total_nanos as f64 / 1e9);
            phase_counts[i] = stats.count;
        }

        let path = jsonl_dir.join(format!("trace-{rep}.jsonl"));
        let session = TraceSession::start(&TraceConfig {
            jsonl: Some(path),
            metrics_addr: None,
        })
        .expect("open jsonl sink");
        traced_jsonl.push(run_once(&runner, &db, Some(&session)));
    }
    let _ = std::fs::remove_dir_all(&jsonl_dir);

    let med_a = median(base_a.clone());
    let med_b = median(base_b.clone());
    let med_base = median(base_a.iter().chain(&base_b).copied().collect());
    let med_mem = median(traced_mem);
    let med_jsonl = median(traced_jsonl);
    let disabled_overhead = (med_a - med_b).abs() / med_b;
    let mem_overhead = (med_mem - med_base) / med_base;
    let jsonl_overhead = (med_jsonl - med_base) / med_base;

    let mut rows = Vec::new();
    let mut phase_entries = Vec::new();
    for (i, &phase) in Phase::ALL.iter().enumerate() {
        if phase_counts[i] == 0 {
            continue;
        }
        let med = median(phase_totals[i].clone());
        rows.push(vec![
            phase.as_str().to_string(),
            format!("{med:.4}"),
            phase_counts[i].to_string(),
        ]);
        phase_entries.push(format!(
            "    {{\"phase\": \"{}\", \"median_total_s\": {med:.6}, \"spans\": {}}}",
            phase.as_str(),
            phase_counts[i],
        ));
    }

    print_table(
        "iteration loop: per-phase wall time (median total s across reps)",
        &["phase", "median_s", "spans"],
        &rows,
    );
    println!(
        "\nbaseline (A/A): {:.4}s vs {:.4}s -> disabled-trace overhead bound {:.2}% (target < 2%)",
        med_a,
        med_b,
        disabled_overhead * 100.0
    );
    println!(
        "traced in-memory: {:.4}s ({:+.2}%), traced jsonl: {:.4}s ({:+.2}%)",
        med_mem,
        mem_overhead * 100.0,
        med_jsonl,
        jsonl_overhead * 100.0
    );

    // ---- incremental engine comparison (--incremental) ----
    // Off vs. on, interleaved, byte-identity asserted; the traced pair
    // supplies the pairs_scored / pairs_reused counter evidence.
    let incr_section = if incremental {
        let incr_runner = Cluseq::new(runner.params().clone().with_incremental(true));
        let sess_full = TraceSession::in_memory();
        let out_full = runner.run_traced(&db, &mut NoopObserver, Some(&sess_full));
        let sess_incr = TraceSession::in_memory();
        let out_incr = incr_runner.run_traced(&db, &mut NoopObserver, Some(&sess_incr));
        assert_eq!(
            out_full.best_cluster, out_incr.best_cluster,
            "incremental engine must not change the clustering"
        );
        assert_eq!(
            out_full.final_log_t.to_bits(),
            out_incr.final_log_t.to_bits()
        );
        let mut full_times = Vec::with_capacity(reps);
        let mut incr_times = Vec::with_capacity(reps);
        for _ in 0..reps {
            full_times.push(run_once(&runner, &db, None));
            incr_times.push(run_once(&incr_runner, &db, None));
        }
        let med_full = median(full_times);
        let med_incr = median(incr_times);
        let scored_full = sess_full.counter(Counter::PairsScored);
        let scored_incr = sess_incr.counter(Counter::PairsScored);
        let reused = sess_incr.counter(Counter::PairsReused);
        let recompiles = sess_incr.counter(Counter::PstRecompiles);
        println!(
            "\nincremental engine: full {med_full:.4}s / incremental {med_incr:.4}s \
             ({:+.2}%); pairs scored {scored_full} -> {scored_incr} \
             ({reused} reused, {recompiles} pst recompiles)",
            (med_incr - med_full) / med_full * 100.0,
        );
        format!(
            "  \"incremental\": {{\n    \"full_median_s\": {med_full:.6},\n    \
             \"incremental_median_s\": {med_incr:.6},\n    \
             \"pairs_scored_full\": {scored_full},\n    \
             \"pairs_scored_incremental\": {scored_incr},\n    \
             \"pairs_reused\": {reused},\n    \
             \"pst_recompiles\": {recompiles},\n    \
             \"byte_identical\": true\n  }},\n"
        )
    } else {
        String::new()
    };

    let peak_rss = peak_rss_bytes().unwrap_or(0);
    let json = format!(
        "{{\n  \"bench\": \"iter_loop\",\n  \"quick\": {quick},\n{incr_section}  \
         \"peak_rss_bytes\": {peak_rss},\n  \
         \"sequences\": {},\n  \"reps\": {reps},\n  \
         \"baseline_a_median_s\": {med_a:.6},\n  \
         \"baseline_b_median_s\": {med_b:.6},\n  \
         \"baseline_median_s\": {med_base:.6},\n  \
         \"disabled_trace_overhead_frac\": {disabled_overhead:.6},\n  \
         \"disabled_trace_overhead_target_frac\": 0.02,\n  \
         \"traced_inmem_median_s\": {med_mem:.6},\n  \
         \"traced_inmem_overhead_frac\": {mem_overhead:.6},\n  \
         \"traced_jsonl_median_s\": {med_jsonl:.6},\n  \
         \"traced_jsonl_overhead_frac\": {jsonl_overhead:.6},\n  \
         \"methodology\": \"interleaved A/A/mem/jsonl samples; the disabled-trace \
         path runs identical code in both baseline sets, so the A/A median delta \
         bounds its overhead and calibrates the noise floor\",\n  \
         \"phases\": [\n{}\n  ]\n}}\n",
        db.len(),
        phase_entries.join(",\n")
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
