//! **Table 6** — sensitivity to the initial similarity threshold `t`.
//!
//! Paper (true t = 2, k fixed at the planted count):
//!
//! | initial t | 1.05 | 1.5  | 2    | 3    |
//! |-----------|------|------|------|------|
//! | final t   | 1.99 | 2.01 | 2.00 | 1.99 |
//! | time (s)  | 8011 | 7556 | 6754 | 7234 |
//! | precision | 81.3 | 83.1 | 83.4 | 81.9 |
//! | recall    | 82.1 | 82.8 | 83.6 | 82.7 |
//!
//! Shape to reproduce: the adjusted threshold converges to (nearly) the
//! same value from any starting point, quality stays flat, and starting
//! off-target costs moderate extra time. Our similarity values live on a
//! different scale than the paper's toy t = 2 construction (real data;
//! log-space products over long segments), so the reproduction target is
//! the *convergence*, not the constant 2.0.
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin table6_initial_t [--scale f] [--full]
//! ```

use cluseq_bench::{pct, print_table, run_and_score, secs, Scale};
use cluseq_core::CluseqParams;
use cluseq_datagen::SyntheticSpec;

fn main() {
    let scale = Scale::from_env();
    let planted = scale.count(20, 100, 4);
    let spec = SyntheticSpec {
        sequences: scale.count(1000, 100_000, 100),
        clusters: planted,
        avg_len: scale.count(200, 1000, 50),
        alphabet: 100,
        outlier_fraction: 0.10,
        seed: scale.seed,
    };
    let db = spec.generate();
    println!(
        "synthetic database: {} sequences, {planted} planted clusters",
        db.len()
    );

    // First, find the converged threshold from the default start — the
    // other rows measure convergence toward (approximately) this value.
    let initial_ts = [1.05, 1.5, 2.0, 3.0];
    let paper = [
        ("1.05", 1.99, 8011.0, 81.3, 82.1),
        ("1.5", 2.01, 7556.0, 83.1, 82.8),
        ("2", 2.00, 6754.0, 83.4, 83.6),
        ("3", 1.99, 7234.0, 81.9, 82.7),
    ];

    let mut rows = Vec::new();
    let mut finals = Vec::new();
    for (&t0, (paper_t0, paper_final, paper_time, paper_p, paper_r)) in initial_ts.iter().zip(paper)
    {
        let scored = run_and_score(
            &db,
            CluseqParams::default()
                .with_initial_clusters(planted)
                .with_initial_threshold(t0)
                .with_significance(10)
                .with_max_depth(6)
                .with_seed(scale.seed),
        );
        finals.push(scored.outcome.final_log_t);
        rows.push(vec![
            format!("{t0} (paper {paper_t0})"),
            format!(
                "ln t = {:.2} (paper t = {paper_final})",
                scored.outcome.final_log_t
            ),
            format!("{} (paper {paper_time:.0}s)", secs(scored.seconds)),
            format!("{} (paper {paper_p})", pct(scored.precision)),
            format!("{} (paper {paper_r})", pct(scored.recall)),
        ]);
        eprintln!("initial t = {t0} done");
    }
    print_table(
        "Table 6: effect of the initial similarity threshold",
        &[
            "initial t",
            "final threshold",
            "time",
            "precision %",
            "recall %",
        ],
        &rows,
    );

    let max = finals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = finals.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "\nconvergence spread of final ln t across starts: {:.1}% \
         (paper: final t within 1% of 2.0 for every start)",
        (max - min) / max.abs().max(1e-9) * 100.0
    );
}
