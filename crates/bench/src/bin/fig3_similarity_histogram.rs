//! **Figure 3** — the similarity distribution and its valley.
//!
//! The paper's Figure 3 is the illustration behind the §4.6 threshold
//! heuristic: a histogram of all sequence–cluster similarities shows a
//! steep noise bulk on the left, a long member tail on the right, and a
//! "valley" — the sharpest turn, found by maximizing the difference
//! between left/right regression-line slopes — separating them. This
//! binary clusters a synthetic database, rebuilds that histogram from the
//! final models, renders it as text art, and marks the detected valley
//! and the final threshold.
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin fig3_similarity_histogram [--scale f]
//! ```

use cluseq_bench::Scale;
use cluseq_core::threshold::find_valley;
use cluseq_core::{max_similarity_pst, Cluseq, CluseqParams};
use cluseq_datagen::SyntheticSpec;
use cluseq_eval::Histogram;

fn main() {
    let scale = Scale::from_env();
    let spec = SyntheticSpec {
        sequences: scale.count(500, 100_000, 100),
        clusters: scale.count(8, 50, 3),
        avg_len: scale.count(180, 1000, 50),
        alphabet: 100,
        outlier_fraction: 0.05,
        seed: scale.seed,
    };
    let db = spec.generate();
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(spec.clusters)
            .with_significance(10)
            .with_max_depth(6)
            .with_seed(scale.seed),
    )
    .run(&db);
    println!(
        "clustered {} sequences into {} clusters; final ln t = {:.2}\n",
        db.len(),
        outcome.cluster_count(),
        outcome.final_log_t
    );

    // All sequence-cluster log-similarities under the final models.
    let background = db.background();
    let mut sims: Vec<f64> = Vec::with_capacity(db.len() * outcome.cluster_count());
    for (_, seq, _) in db.iter() {
        for cluster in &outcome.clusters {
            let s = max_similarity_pst(&cluster.pst, &background, seq.symbols()).log_sim;
            if s.is_finite() {
                sims.push(s);
            }
        }
    }
    let lo = sims.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = sims.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut hist = Histogram::new(lo, hi, 60);
    for &s in &sims {
        hist.add(s);
    }

    println!("similarity distribution (ln SIM over all sequence-cluster pairs):\n");
    print!("{}", hist.render_ascii(50));

    // Zoomed panel over the noise bulk (the member tail stretches the full
    // axis so far that the bulk's decline — the part Figure 3 actually
    // depicts — collapses into one bucket above).
    let mut sorted = sims.clone();
    sorted.sort_by(f64::total_cmp);
    let p75 = sorted[(sorted.len() - 1) * 3 / 4];
    if p75 > lo {
        let mut zoom = Histogram::new(lo, p75, 30);
        for &s in &sims {
            if s <= p75 {
                zoom.add(s);
            }
        }
        println!("\nzoom into the bulk (up to the 90th percentile):\n");
        print!("{}", zoom.render_ascii(50));
    }

    match find_valley(&hist) {
        Some(valley) => {
            println!("\ndetected valley (sharpest regression-slope turn): ln SIM = {valley:.2}");
            println!(
                "final threshold:                                   ln t   = {:.2}",
                outcome.final_log_t
            );
            println!(
                "\npaper shape: a huge low-similarity bulk declining steeply, a long\n\
                 member tail, and the valley between them — the threshold the\n\
                 adjustment converges to."
            );
        }
        None => println!("\nno valley detected (degenerate distribution)"),
    }
}
