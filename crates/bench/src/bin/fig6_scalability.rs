//! **Figure 6** — scalability of CLUSEQ along four axes, plus the
//! out-of-core axis, recorded as `BENCH_fig6.json`.
//!
//! Paper (each axis varied with the others fixed at 100k sequences,
//! 1000 symbols/sequence, 100 distinct symbols, 50 clusters):
//!
//! * (a) response time **linear** in the number of clusters {10..100};
//! * (b) **linear** in the number of sequences {10k..200k};
//! * (c) mildly **super-linear** in the average length {100..2000};
//! * (d) **flat** in the number of distinct symbols.
//!
//! The `outofcore` axis goes beyond the paper: it streams the corpus to
//! disk (never materializing it), clusters it through a file-backed
//! [`FileStore`] with a sharded snapshot scan and a bounded model cache,
//! and records the process's peak RSS next to the corpus size — the
//! engine's resident footprint must stay far below the file. Under
//! `--full` the largest configuration is 10^7 sequences. Configurations
//! run in ascending size so the monotone `VmHWM` reading after each one
//! is an honest per-configuration bound.
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin fig6_scalability \
//!     [--axis clusters|sequences|length|alphabet|outofcore|all] \
//!     [--scale f] [--full] [--out BENCH_fig6.json]
//! ```

use std::time::Instant;

use cluseq_bench::{flag_value, pct, peak_rss_bytes, print_table, run_and_score, secs, Scale};
use cluseq_core::{Cluseq, CluseqParams, ScanMode};
use cluseq_datagen::SyntheticSpec;
use cluseq_eval::{Confusion, MatchStrategy};
use cluseq_seq::store::FileStore;
use cluseq_seq::{store, SequenceStore};

fn base_spec(scale: &Scale) -> SyntheticSpec {
    SyntheticSpec {
        sequences: scale.count(800, 100_000, 100),
        clusters: scale.count(10, 50, 2),
        avg_len: scale.count(200, 1000, 40),
        alphabet: 100,
        outlier_fraction: 0.05,
        seed: scale.seed,
    }
}

fn run_axis(scale: &Scale, axis: &str, entries: &mut Vec<String>) {
    let base = base_spec(scale);
    let specs: Vec<(String, SyntheticSpec)> = match axis {
        "clusters" => [2usize, 5, 10, 20]
            .iter()
            .map(|&k| {
                (
                    format!("{k} clusters"),
                    SyntheticSpec {
                        clusters: if scale.full { k * 5 } else { k },
                        ..base
                    },
                )
            })
            .collect(),
        "sequences" => [200usize, 400, 800, 1600]
            .iter()
            .map(|&n| {
                (
                    format!("{n} sequences"),
                    SyntheticSpec {
                        sequences: if scale.full { n * 125 } else { n },
                        ..base
                    },
                )
            })
            .collect(),
        "length" => [50usize, 100, 200, 400]
            .iter()
            .map(|&l| {
                (
                    format!("avg len {l}"),
                    SyntheticSpec {
                        avg_len: if scale.full { l * 5 } else { l },
                        ..base
                    },
                )
            })
            .collect(),
        "alphabet" => [25usize, 50, 100, 200]
            .iter()
            .map(|&a| {
                (
                    format!("{a} symbols"),
                    SyntheticSpec {
                        alphabet: a,
                        ..base
                    },
                )
            })
            .collect(),
        other => {
            eprintln!("error: unknown --axis {other:?}");
            std::process::exit(2);
        }
    };

    let mut rows = Vec::new();
    let mut times = Vec::new();
    for (label, spec) in &specs {
        let db = spec.generate();
        let scored = run_and_score(
            &db,
            CluseqParams::default()
                .with_initial_clusters(spec.clusters)
                // Warm start near the converged threshold (the paper's own
                // sensitivity experiments start at the true t); a cold
                // 1.0005 start under heavy noise can deadlock in a
                // contaminated monopoly cluster at this reduced scale —
                // see EXPERIMENTS.md.
                .with_initial_threshold(3000.0)
                .with_significance(10)
                .with_max_depth(6)
                .with_seed(scale.seed),
        );
        // Per-iteration time is the honest scaling signal: total time also
        // reflects how many iterations the threshold adaptation needed,
        // which is a data-hardness effect, not a cost-model one.
        let per_iter = scored.seconds / scored.outcome.iterations.max(1) as f64;
        times.push(per_iter);
        rows.push(vec![
            label.clone(),
            secs(scored.seconds),
            format!("{}", scored.outcome.iterations),
            secs(per_iter),
            format!("{}", scored.clusters),
            pct(scored.accuracy),
        ]);
        entries.push(format!(
            "    {{\"axis\": \"{axis}\", \"workload\": \"{label}\", \
             \"seconds\": {:.4}, \"iterations\": {}, \"per_iter_s\": {per_iter:.4}, \
             \"clusters\": {}, \"accuracy\": {:.4}, \"peak_rss_bytes\": {}}}",
            scored.seconds,
            scored.outcome.iterations,
            scored.clusters,
            scored.accuracy,
            peak_rss_bytes().unwrap_or(0),
        ));
        eprintln!("{label} done ({})", secs(scored.seconds));
    }

    let expected = match axis {
        "clusters" => "linear in the number of clusters",
        "sequences" => "linear in the number of sequences",
        "length" => "mildly super-linear in the average length",
        _ => "nearly flat in the alphabet size",
    };
    print_table(
        &format!("Figure 6 ({axis}): response time — paper shape: {expected}"),
        &[
            "workload",
            "time",
            "iters",
            "time/iter",
            "final clusters",
            "accuracy %",
        ],
        &rows,
    );
    // A crude shape statistic: the ratio of successive time ratios to the
    // corresponding workload ratios (1.0 = perfectly linear).
    if times.len() >= 2 && times[0] > 0.0 {
        let growth = times.last().unwrap() / times[0];
        println!("per-iteration time(last)/time(first) = {growth:.1}x over an 8x (2x for alphabet) workload span");
    }
}

/// The out-of-core axis: corpus streamed to disk, clustered through a
/// [`FileStore`] with a sharded snapshot scan, a frozen threshold (so no
/// O(n) similarity sample is collected), and a bounded model cache. The
/// interesting column is peak RSS vs. file size: resident state is the
/// 16-byte-per-sequence offset index plus O(sequences) assignment
/// bookkeeping, never the symbols.
fn run_outofcore(scale: &Scale, entries: &mut Vec<String>) {
    // Ascending, so each config's VmHWM reading bounds that config.
    let sizes: &[usize] = if scale.full {
        &[100_000, 1_000_000, 10_000_000]
    } else {
        &[1_000, 4_000]
    };
    let dir = std::env::temp_dir().join(format!("fig6-ooc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create corpus dir");

    let mut rows = Vec::new();
    for &n in sizes {
        let spec = SyntheticSpec {
            sequences: n,
            // Under --full the axis trades cluster count (and iterations,
            // below) for reachable wall clock on one core: RSS vs corpus
            // size is the measurement, cluster recovery is not.
            clusters: if scale.full {
                10
            } else {
                scale.count(8, 50, 2)
            },
            // Shorter sequences at paper scale keep the 10^7 corpus near
            // 2 GB on disk; the memory story is what this axis measures.
            avg_len: if scale.full { 100 } else { 200 },
            alphabet: 100,
            outlier_fraction: 0.05,
            seed: scale.seed,
        };
        let path = dir.join(format!("corpus-{n}.cseq"));
        spec.generate_streamed(&path)
            .expect("stream corpus to disk");
        let file_bytes = std::fs::metadata(&path).map_or(0, |m| m.len());
        let fs = FileStore::open(&path).expect("open streamed corpus");
        let store: &dyn SequenceStore = &fs;
        let params = CluseqParams::default()
            .with_initial_clusters(spec.clusters)
            .with_initial_threshold(3000.0)
            // Frozen threshold: the scan prunes below ln t and collects no
            // similarity histogram, so scan state stays O(shard).
            .with_threshold_adjustment(false)
            .with_significance(10)
            .with_max_depth(6)
            // The scan holds an Arc to every *live* cluster's automaton
            // for the duration of an iteration — the cache budget bounds
            // what survives *between* iterations, not what a scan pins.
            // Bounding the source PSTs bounds the automata: 1 MiB of PST
            // compiles to a few tens of MB of dense tables, so the model
            // tier stays flat as the corpus grows.
            .with_max_pst_bytes(1 << 20)
            .with_scan_mode(ScanMode::Snapshot)
            .with_scan_shard(65_536)
            .with_model_cache_mb(256)
            .with_max_iterations(if scale.full { 2 } else { 4 })
            .with_seed(scale.seed);
        let start = Instant::now();
        let outcome = Cluseq::new(params).run(store);
        let seconds = start.elapsed().as_secs_f64();
        // Read the high-water mark before accuracy scoring allocates its
        // own O(n) label and membership vectors.
        let peak_rss = peak_rss_bytes().unwrap_or(0);
        let labels: Vec<Option<u32>> = (0..store.len()).map(|i| store.label(i)).collect();
        let confusion = Confusion::new(
            &labels,
            &outcome.membership_lists(),
            MatchStrategy::Hungarian,
        );
        let accuracy = confusion.accuracy();
        rows.push(vec![
            format!("{n} sequences"),
            format!("{:.1} MB", file_bytes as f64 / 1e6),
            secs(seconds),
            format!("{}", outcome.iterations),
            format!("{}", outcome.cluster_count()),
            format!("{:.1} MB", peak_rss as f64 / 1e6),
            pct(accuracy),
        ]);
        entries.push(format!(
            "    {{\"axis\": \"outofcore\", \"workload\": \"{n} sequences\", \
             \"store\": \"file\", \"sequences\": {n}, \"file_bytes\": {file_bytes}, \
             \"seconds\": {seconds:.4}, \"iterations\": {}, \"clusters\": {}, \
             \"accuracy\": {accuracy:.4}, \"peak_rss_bytes\": {peak_rss}}}",
            outcome.iterations,
            outcome.cluster_count(),
        ));
        eprintln!(
            "outofcore {n} done ({}, corpus {:.1} MB, peak RSS {:.1} MB)",
            secs(seconds),
            file_bytes as f64 / 1e6,
            peak_rss as f64 / 1e6
        );
        // Reclaim the multi-GB corpora before the next (larger) one.
        drop(fs);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(store::sidecar_path(&path));
    }
    let _ = std::fs::remove_dir_all(&dir);

    print_table(
        "Figure 6 (outofcore): file-backed corpus, bounded resident footprint",
        &[
            "workload",
            "corpus",
            "time",
            "iters",
            "final clusters",
            "peak RSS",
            "accuracy %",
        ],
        &rows,
    );
}

fn main() {
    let scale = Scale::from_env();
    let axis = flag_value("--axis").unwrap_or_else(|| "all".into());
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_fig6.json".to_string());
    let mut entries = Vec::new();
    if axis == "all" {
        for a in ["clusters", "sequences", "length", "alphabet"] {
            run_axis(&scale, a, &mut entries);
        }
        run_outofcore(&scale, &mut entries);
    } else if axis == "outofcore" {
        run_outofcore(&scale, &mut entries);
    } else {
        run_axis(&scale, &axis, &mut entries);
    }
    let json = format!(
        "{{\n  \"bench\": \"fig6_scalability\",\n  \"full\": {},\n  \
         \"peak_rss_note\": \"VmHWM is a process-wide high-water mark; \
         configs run in ascending size so each reading bounds its config\",\n  \
         \"configs\": [\n{}\n  ]\n}}\n",
        scale.full,
        entries.join(",\n")
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
