//! **Figure 6** — scalability of CLUSEQ along four axes.
//!
//! Paper (each axis varied with the others fixed at 100k sequences,
//! 1000 symbols/sequence, 100 distinct symbols, 50 clusters):
//!
//! * (a) response time **linear** in the number of clusters {10..100};
//! * (b) **linear** in the number of sequences {10k..200k};
//! * (c) mildly **super-linear** in the average length {100..2000};
//! * (d) **flat** in the number of distinct symbols.
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin fig6_scalability \
//!     [--axis clusters|sequences|length|alphabet|all] [--scale f] [--full]
//! ```

use cluseq_bench::{flag_value, pct, print_table, run_and_score, secs, Scale};
use cluseq_core::CluseqParams;
use cluseq_datagen::SyntheticSpec;

fn base_spec(scale: &Scale) -> SyntheticSpec {
    SyntheticSpec {
        sequences: scale.count(800, 100_000, 100),
        clusters: scale.count(10, 50, 2),
        avg_len: scale.count(200, 1000, 40),
        alphabet: 100,
        outlier_fraction: 0.05,
        seed: scale.seed,
    }
}

fn run_axis(scale: &Scale, axis: &str) {
    let base = base_spec(scale);
    let specs: Vec<(String, SyntheticSpec)> = match axis {
        "clusters" => [2usize, 5, 10, 20]
            .iter()
            .map(|&k| {
                (
                    format!("{k} clusters"),
                    SyntheticSpec {
                        clusters: if scale.full { k * 5 } else { k },
                        ..base
                    },
                )
            })
            .collect(),
        "sequences" => [200usize, 400, 800, 1600]
            .iter()
            .map(|&n| {
                (
                    format!("{n} sequences"),
                    SyntheticSpec {
                        sequences: if scale.full { n * 125 } else { n },
                        ..base
                    },
                )
            })
            .collect(),
        "length" => [50usize, 100, 200, 400]
            .iter()
            .map(|&l| {
                (
                    format!("avg len {l}"),
                    SyntheticSpec {
                        avg_len: if scale.full { l * 5 } else { l },
                        ..base
                    },
                )
            })
            .collect(),
        "alphabet" => [25usize, 50, 100, 200]
            .iter()
            .map(|&a| {
                (
                    format!("{a} symbols"),
                    SyntheticSpec {
                        alphabet: a,
                        ..base
                    },
                )
            })
            .collect(),
        other => {
            eprintln!("error: unknown --axis {other:?}");
            std::process::exit(2);
        }
    };

    let mut rows = Vec::new();
    let mut times = Vec::new();
    for (label, spec) in &specs {
        let db = spec.generate();
        let scored = run_and_score(
            &db,
            CluseqParams::default()
                .with_initial_clusters(spec.clusters)
                // Warm start near the converged threshold (the paper's own
                // sensitivity experiments start at the true t); a cold
                // 1.0005 start under heavy noise can deadlock in a
                // contaminated monopoly cluster at this reduced scale —
                // see EXPERIMENTS.md.
                .with_initial_threshold(3000.0)
                .with_significance(10)
                .with_max_depth(6)
                .with_seed(scale.seed),
        );
        // Per-iteration time is the honest scaling signal: total time also
        // reflects how many iterations the threshold adaptation needed,
        // which is a data-hardness effect, not a cost-model one.
        let per_iter = scored.seconds / scored.outcome.iterations.max(1) as f64;
        times.push(per_iter);
        rows.push(vec![
            label.clone(),
            secs(scored.seconds),
            format!("{}", scored.outcome.iterations),
            secs(per_iter),
            format!("{}", scored.clusters),
            pct(scored.accuracy),
        ]);
        eprintln!("{label} done ({})", secs(scored.seconds));
    }

    let expected = match axis {
        "clusters" => "linear in the number of clusters",
        "sequences" => "linear in the number of sequences",
        "length" => "mildly super-linear in the average length",
        _ => "nearly flat in the alphabet size",
    };
    print_table(
        &format!("Figure 6 ({axis}): response time — paper shape: {expected}"),
        &[
            "workload",
            "time",
            "iters",
            "time/iter",
            "final clusters",
            "accuracy %",
        ],
        &rows,
    );
    // A crude shape statistic: the ratio of successive time ratios to the
    // corresponding workload ratios (1.0 = perfectly linear).
    if times.len() >= 2 && times[0] > 0.0 {
        let growth = times.last().unwrap() / times[0];
        println!("per-iteration time(last)/time(first) = {growth:.1}x over an 8x (2x for alphabet) workload span");
    }
}

fn main() {
    let scale = Scale::from_env();
    let axis = flag_value("--axis").unwrap_or_else(|| "all".into());
    if axis == "all" {
        for a in ["clusters", "sequences", "length", "alphabet"] {
            run_axis(&scale, a);
        }
    } else {
        run_axis(&scale, &axis);
    }
}
