//! **Figure 5** — effect of the seed-sample size `m`.
//!
//! Paper (100k sequences, 50 clusters, 5% outliers): quality improves
//! with m and plateaus past `m > 5k`; response time has a *valley* around
//! `m ≈ 3k` — smaller samples give poor initial clusters (longer runs),
//! larger samples make the selection itself expensive (Figure 5b).
//!
//! We sweep the sample *factor* (m = factor × k_n, the paper's knob) and
//! report quality and time per factor.
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin fig5_sample_size [--scale f] [--full]
//! ```

use cluseq_bench::{pct, print_table, run_and_score, secs, Scale};
use cluseq_core::CluseqParams;
use cluseq_datagen::SyntheticSpec;

fn main() {
    let scale = Scale::from_env();
    let spec = SyntheticSpec {
        sequences: scale.count(800, 100_000, 100),
        clusters: scale.count(10, 50, 3),
        avg_len: scale.count(200, 1000, 50),
        alphabet: 100,
        outlier_fraction: 0.05,
        seed: scale.seed,
    };
    let db = spec.generate();
    println!(
        "synthetic database: {} sequences, {} clusters",
        db.len(),
        spec.clusters
    );

    let factors = [1usize, 2, 3, 5, 8, 12];
    let mut rows = Vec::new();
    for factor in factors {
        let scored = run_and_score(
            &db,
            CluseqParams::default()
                .with_initial_clusters(spec.clusters)
                // Warm start near the converged threshold (the paper's own
                // sensitivity experiments start at the true t); a cold
                // 1.0005 start under heavy noise can deadlock in a
                // contaminated monopoly cluster at this reduced scale —
                // see EXPERIMENTS.md.
                .with_initial_threshold(3000.0)
                .with_sample_factor(factor)
                .with_significance(10)
                .with_max_depth(6)
                .with_seed(scale.seed),
        );
        rows.push(vec![
            format!("{factor}k"),
            pct(scored.precision),
            pct(scored.recall),
            format!("{}", scored.clusters),
            format!("{}", scored.outcome.iterations),
            secs(scored.seconds),
        ]);
        eprintln!("factor {factor} done");
    }
    print_table(
        "Figure 5: sample size m vs quality (a) and response time (b)",
        &[
            "m",
            "precision %",
            "recall %",
            "clusters",
            "iterations",
            "time",
        ],
        &rows,
    );
    println!(
        "\npaper shape: quality plateaus past m = 5k; time falls to a valley \
         near m = 3k (small samples -> poor seeds -> more iterations) and \
         grows again as the sample itself gets expensive."
    );
}
