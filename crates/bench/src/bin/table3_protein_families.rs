//! **Table 3** — per-family precision/recall on the protein database.
//!
//! Paper (10 of the 30 families shown): precision 75–88%, recall 80–89%,
//! consistently across family sizes from 884 down to 141. Shape to
//! reproduce: per-family precision/recall in a comparable band with no
//! systematic penalty on small families.
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin table3_protein_families [--scale f] [--full]
//! ```

use cluseq_bench::{pct, print_table, run_and_score, secs, Scale};
use cluseq_core::CluseqParams;
use cluseq_datagen::protein::FAMILY_NAMES;
use cluseq_datagen::ProteinFamilySpec;
use cluseq_eval::{Confusion, MatchStrategy};

/// The paper's Table 3 rows (family, size, precision %, recall %).
const PAPER: [(&str, usize, u32, u32); 10] = [
    ("ig", 884, 85, 82),
    ("pkinase", 725, 77, 89),
    ("globin", 681, 88, 86),
    ("7tm_1", 515, 82, 83),
    ("homeobox", 383, 84, 81),
    ("efhand", 320, 80, 83),
    ("RuBisCO_large", 311, 85, 80),
    ("gluts", 144, 85, 89),
    ("actin", 142, 87, 85),
    ("rrm", 141, 75, 82),
];

fn main() {
    let scale = Scale::from_env();
    let spec = ProteinFamilySpec {
        families: if scale.full { 30 } else { 10 },
        size_scale: if scale.full { 1.0 } else { 0.04 * scale.factor },
        seq_len: if scale.full { (150, 400) } else { (120, 250) },
        motifs_per_family: 2,
        mutation_rate: 0.10,
        seed: scale.seed.wrapping_add(2003),
        ..Default::default()
    };
    let db = spec.generate();
    println!(
        "protein database: {} sequences, {} families",
        db.len(),
        db.class_count()
    );

    let (c, min_exclusive) = if scale.full { (30, 30) } else { (1, 3) };
    let scored = run_and_score(
        &db,
        CluseqParams::default()
            .with_initial_clusters(10)
            .with_initial_threshold(1.0005)
            .with_significance(c)
            .with_min_exclusive(min_exclusive)
            .with_max_depth(8)
            .with_seed(scale.seed),
    );
    println!(
        "CLUSEQ: {} clusters, {:.1}% correct, {}",
        scored.clusters,
        scored.accuracy * 100.0,
        secs(scored.seconds)
    );

    let confusion = Confusion::new(
        &db.labels(),
        &scored.outcome.membership_lists(),
        MatchStrategy::Hungarian,
    );
    let metrics = confusion.class_metrics();

    let mut rows = Vec::new();
    for (name, paper_size, paper_p, paper_r) in PAPER {
        let family_idx = FAMILY_NAMES.iter().position(|&n| n == name).unwrap() as u32;
        let Some(m) = metrics.iter().find(|m| m.class == family_idx) else {
            continue;
        };
        rows.push(vec![
            name.to_string(),
            format!("{paper_size}"),
            format!("{}", m.size),
            format!("{paper_p}"),
            pct(m.precision),
            format!("{paper_r}"),
            pct(m.recall),
        ]);
    }
    print_table(
        "Table 3: per-family precision/recall (paper vs measured)",
        &[
            "Family",
            "paper size",
            "ours size",
            "paper P%",
            "ours P%",
            "paper R%",
            "ours R%",
        ],
        &rows,
    );

    // The paper's observation: performance is consistent across family
    // sizes. Report the small-vs-large gap explicitly.
    let (large, small): (Vec<_>, Vec<_>) = metrics.iter().partition(|m| m.size >= 15);
    let mean = |v: &[&cluseq_eval::ClassMetrics]| -> f64 {
        if v.is_empty() {
            return 0.0;
        }
        v.iter().map(|m| m.recall).sum::<f64>() / v.len() as f64
    };
    println!(
        "\nmean recall — larger families: {:.2}, smaller families: {:.2}",
        mean(&large),
        mean(&small)
    );
}
