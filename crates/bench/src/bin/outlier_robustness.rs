//! **§6.1 robustness study** — accuracy vs outlier percentage.
//!
//! Paper: *"the percentage of outliers varies from 1% to 20%. We find that
//! the accuracy of CLUSEQ is immune to the increase of outliers."*
//! Shape to reproduce: a flat accuracy curve across the outlier sweep.
//!
//! Both noise flavours are exercised: memoryless random sequences (the
//! easy kind) and composition-preserving shuffles of real members (the
//! kind only a *sequential* model can reject).
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin outlier_robustness [--scale f] [--full]
//! ```

use cluseq_bench::{pct, print_table, run_and_score, secs, Scale};
use cluseq_core::CluseqParams;
use cluseq_datagen::{inject_outliers, SyntheticSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_env();
    let mut rows = Vec::new();
    for percent in [1usize, 5, 10, 15, 20] {
        for shuffled in [false, true] {
            // Clean clustered portion, constant across the sweep.
            let spec = SyntheticSpec {
                sequences: scale.count(600, 90_000, 80),
                clusters: scale.count(8, 50, 3),
                avg_len: scale.count(200, 1000, 50),
                alphabet: 100,
                outlier_fraction: 0.0,
                seed: scale.seed,
            };
            let mut db = spec.generate();
            let n_outliers = db.len() * percent / (100 - percent).max(1);
            let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xBAD);
            inject_outliers(&mut db, n_outliers, spec.avg_len, shuffled, &mut rng);

            let scored = run_and_score(
                &db,
                CluseqParams::default()
                    .with_initial_clusters(spec.clusters)
                    // Warm start near the converged threshold (the paper's own
                    // sensitivity experiments start at the true t); a cold
                    // 1.0005 start under heavy noise can deadlock in a
                    // contaminated monopoly cluster at this reduced scale —
                    // see EXPERIMENTS.md.
                    .with_initial_threshold(3000.0)
                    .with_significance(10)
                    .with_max_depth(6)
                    .with_seed(scale.seed),
            );
            rows.push(vec![
                format!("{percent}%"),
                if shuffled { "shuffle" } else { "random" }.into(),
                pct(scored.accuracy),
                pct(scored.precision),
                pct(scored.recall),
                format!("{}", scored.clusters),
                secs(scored.seconds),
            ]);
            eprintln!(
                "{percent}% {} done",
                if shuffled { "shuffle" } else { "random" }
            );
        }
    }
    print_table(
        "Outlier robustness: accuracy vs outlier percentage (paper: flat)",
        &[
            "outliers",
            "noise kind",
            "accuracy %",
            "precision %",
            "recall %",
            "clusters",
            "time",
        ],
        &rows,
    );
}
