//! **Table 5** — sensitivity to the initial number of clusters `k`.
//!
//! Paper (100 planted clusters, 100k sequences, 10% outliers):
//!
//! | initial k | 1     | 20   | 100  | 200  |
//! |-----------|-------|------|------|------|
//! | final k   | 102   | 99   | 101  | 102  |
//! | time (s)  | 10112 | 9023 | 6754 | 8976 |
//! | precision | 81.3  | 82.1 | 82.6 | 81.0 |
//! | recall    | 81.6  | 82.0 | 83.4 | 81.7 |
//!
//! Shape to reproduce: the final cluster count lands near the planted
//! count regardless of the starting point; quality is flat; starting far
//! from the truth costs extra time (U-shaped response time).
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin table5_initial_k [--scale f] [--full]
//! ```

use cluseq_bench::{pct, print_table, run_and_score, secs, Scale};
use cluseq_core::CluseqParams;
use cluseq_datagen::SyntheticSpec;

fn main() {
    let scale = Scale::from_env();
    let planted = scale.count(20, 100, 4);
    let spec = SyntheticSpec {
        sequences: scale.count(1000, 100_000, 100),
        clusters: planted,
        avg_len: scale.count(200, 1000, 50),
        alphabet: 100,
        outlier_fraction: 0.10,
        seed: scale.seed,
    };
    let db = spec.generate();
    println!(
        "synthetic database: {} sequences, {} planted clusters, 10% outliers",
        db.len(),
        planted
    );

    // The paper's sweep {1, 20, 100, 200} around truth 100, scaled around
    // our planted count: {1, planted/5, planted, 2*planted}.
    let initial_ks = [1, (planted / 5).max(2), planted, planted * 2];
    let paper = [
        ("1", 102, 10112.0, 81.3, 81.6),
        ("20", 99, 9023.0, 82.1, 82.0),
        ("100", 101, 6754.0, 82.6, 83.4),
        ("200", 102, 8976.0, 81.0, 81.7),
    ];

    let mut rows = Vec::new();
    for (&k, (paper_k, paper_final, paper_time, paper_p, paper_r)) in initial_ks.iter().zip(paper) {
        let scored = run_and_score(
            &db,
            CluseqParams::default()
                .with_initial_clusters(k)
                .with_significance(10)
                .with_max_depth(6)
                .with_seed(scale.seed),
        );
        rows.push(vec![
            format!("{k} (paper {paper_k})"),
            format!("{} (paper {paper_final})", scored.clusters),
            format!("{} (paper {paper_time:.0}s)", secs(scored.seconds)),
            format!("{} (paper {paper_p})", pct(scored.precision)),
            format!("{} (paper {paper_r})", pct(scored.recall)),
        ]);
        eprintln!("initial k = {k} done");
    }
    print_table(
        "Table 5: effect of the initial number of clusters",
        &["initial k", "final k", "time", "precision %", "recall %"],
        &rows,
    );
    println!("\nplanted cluster count: {planted}");
}
