//! Load-generates the serve daemon and records `BENCH_serve.json`.
//!
//! Two phases against an in-process `cluseq serve` instance on a
//! loopback socket, both issuing ASSIGN queries drawn from the training
//! database:
//!
//! 1. **single-in-flight** — one connection, strictly sequential
//!    request/response; the baseline a naive client sees.
//! 2. **batched** — `--clients` (default 16) closed-loop connections;
//!    the dispatcher coalesces concurrently queued requests into batches
//!    scored through `parallel_map` at `--threads` (default 4).
//!
//! Both phases run with request tracing enabled (an in-memory registry),
//! so the report also carries the server-side mean queue wait per phase,
//! read back from the `serve_stage_queue_wait` histogram.
//!
//! A third section measures the observability tax directly: trios of
//! fresh server instances (two untraced, one traced) probed with
//! order-rotated interleaved bursts, respawned several times, with the
//! median per-trio traced-vs-untraced throughput delta reported as
//! `trace_overhead_pct` (budget: < 3%) and the median untraced A/A delta
//! as `disabled_aa_pct` — the noise floor for the compiled-in-but-
//! disabled path, which takes no clock reads at all (budget: < 1%).
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin bench_serve \
//!     [--quick] [--threads N] [--clients N] [--out BENCH_serve.json]
//! ```
//!
//! The target trajectory is batched throughput ≥ 3× the single-in-flight
//! qps at `--threads 4`. That ratio needs ≥ 4 cores: batching converts
//! idle round-trip gaps into parallel scoring, so on a single-core host
//! (the JSON records `cores`) the two phases are both CPU-bound and the
//! ratio only reflects amortized wakeup overhead. The overhead deltas
//! are likewise noisier on a single core, where client and server share
//! one hardware thread.

use std::path::Path;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use cluseq_bench::{flag_value, peak_rss_bytes, print_table};
use cluseq_core::persist::SavedModel;
use cluseq_core::serve::client::ServeClient;
use cluseq_core::serve::model::ServeModel;
use cluseq_core::serve::obs::{ObsConfig, ServeObs};
use cluseq_core::serve::{ServeConfig, Server};
use cluseq_core::trace::{HistKind, TraceSession, TraceShared};
use cluseq_core::{Cluseq, CluseqParams, ScanKernel};
use cluseq_datagen::SyntheticSpec;
use cluseq_seq::Symbol;

struct PhaseStats {
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_queue_wait_us: f64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 / 1_000.0
}

/// Mean of the server-side queue-wait histogram since `before`.
fn queue_wait_mean_us(trace: &TraceShared, before: (u64, u64)) -> f64 {
    let (sum0, count0) = before;
    let sum = trace.hist_sum(HistKind::ServeQueueWait) - sum0;
    let count = trace
        .hist_counts(HistKind::ServeQueueWait)
        .iter()
        .sum::<u64>()
        - count0;
    if count == 0 {
        0.0
    } else {
        sum as f64 / count as f64 / 1_000.0
    }
}

fn queue_wait_snapshot(trace: &TraceShared) -> (u64, u64) {
    (
        trace.hist_sum(HistKind::ServeQueueWait),
        trace.hist_counts(HistKind::ServeQueueWait).iter().sum(),
    )
}

fn stats(
    total: usize,
    wall: Duration,
    mut latencies_ns: Vec<u64>,
    mean_queue_wait_us: f64,
) -> PhaseStats {
    latencies_ns.sort_unstable();
    PhaseStats {
        qps: total as f64 / wall.as_secs_f64(),
        p50_us: percentile(&latencies_ns, 0.50),
        p95_us: percentile(&latencies_ns, 0.95),
        p99_us: percentile(&latencies_ns, 0.99),
        mean_queue_wait_us,
    }
}

/// One connection, one request in flight at a time.
fn run_single(
    addr: std::net::SocketAddr,
    queries: &[Vec<Symbol>],
    requests: usize,
    trace: &TraceShared,
) -> PhaseStats {
    let mut client = ServeClient::connect(addr).expect("connect");
    for q in queries.iter().take(64) {
        client.assign(q).expect("warmup assign");
    }
    let before = queue_wait_snapshot(trace);
    let mut latencies = Vec::with_capacity(requests);
    let start = Instant::now();
    for i in 0..requests {
        let q = &queries[i % queries.len()];
        let sent = Instant::now();
        client.assign(q).expect("assign");
        latencies.push(sent.elapsed().as_nanos() as u64);
    }
    let wall = start.elapsed();
    stats(requests, wall, latencies, queue_wait_mean_us(trace, before))
}

/// `clients` closed-loop connections hammering concurrently.
fn run_batched(
    addr: std::net::SocketAddr,
    queries: &[Vec<Symbol>],
    clients: usize,
    requests: usize,
    trace: &TraceShared,
) -> PhaseStats {
    let per_client = requests / clients;
    let barrier = Barrier::new(clients + 1);
    let before = queue_wait_snapshot(trace);
    let (wall, latencies) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    for q in queries.iter().take(8) {
                        client.assign(q).expect("warmup assign");
                    }
                    barrier.wait();
                    let mut latencies = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        // Stagger starting offsets so batches mix queries.
                        let q = &queries[(i + c * 7) % queries.len()];
                        let sent = Instant::now();
                        client.assign(q).expect("assign");
                        latencies.push(sent.elapsed().as_nanos() as u64);
                    }
                    latencies
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let latencies: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect();
        (start.elapsed(), latencies)
    });
    stats(
        per_client * clients,
        wall,
        latencies,
        queue_wait_mean_us(trace, before),
    )
}

/// One single-in-flight burst on an already-warm connection; returns the
/// elapsed wall seconds.
fn burst_secs(client: &mut ServeClient, queries: &[Vec<Symbol>], requests: usize) -> f64 {
    let start = Instant::now();
    for i in 0..requests {
        client.assign(&queries[i % queries.len()]).expect("assign");
    }
    start.elapsed().as_secs_f64()
}

/// The middle value (mean of the middle two for even counts). Sorts in
/// place.
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

struct Overhead {
    untraced_qps: f64,
    traced_qps: f64,
    trace_overhead_pct: f64,
    disabled_aa_pct: f64,
    /// Every trio's own overhead estimate, in spawn order — the spread
    /// the medians were drawn from.
    trio_overhead_pct: Vec<f64>,
}

/// The observability tax, measured against two distinct noise sources.
///
/// *Time-correlated* noise (thermal and noisy-neighbour bursts at the
/// 10 ms–1 s scale) is cancelled by fine-grained interleaving: each sweep
/// visits all three servers — two untraced, one traced — within a few
/// milliseconds, in an order rotated every sweep, so a burst slows every
/// leg of the sweep about equally and falls out of the ratio.
///
/// *Server-identity* noise is the nastier one: a freshly spawned server
/// can land in a scheduling/layout mode a few percent slower than its
/// peers and stay there for its whole life, which no amount of
/// interleaving cancels. So the whole trio is torn down and respawned
/// several times, each trio yields its own overhead estimate, and the
/// report takes the *median* across trios — a mean would let one trio
/// whose traced server drew a slow mode drag the headline number around,
/// while the median shrugs it off.
///
/// The two untraced roles yield an A/A delta under the identical
/// protocol: the measurement noise floor for the compiled-in-but-disabled
/// path, which takes no clock reads at all.
fn measure_overhead(
    model_path: &Path,
    config: &ServeConfig,
    queries: &[Vec<Symbol>],
    requests: usize,
) -> Overhead {
    const TRIOS: usize = 16;
    const WARMUP_SWEEPS: usize = 8;
    const SWEEPS: usize = 64;
    let slice = (requests / 20).max(100);
    let load = || ServeModel::load(model_path, None, ScanKernel::Compiled, 1).expect("load model");

    let mut trio_overhead = Vec::with_capacity(TRIOS);
    let mut trio_aa = Vec::with_capacity(TRIOS);
    let mut trio_untraced = Vec::with_capacity(TRIOS);
    let mut trio_traced = Vec::with_capacity(TRIOS);
    for trio in 0..TRIOS {
        let obs = Arc::new(
            ServeObs::new(TraceSession::in_memory().shared_arc(), &ObsConfig::default())
                .expect("open obs"),
        );
        let off_a = Server::start(load(), None, config, None).expect("start untraced a");
        let off_b = Server::start(load(), None, config, None).expect("start untraced b");
        let on = Server::start(load(), None, config, Some(obs)).expect("start traced");
        let mut c_off_a = ServeClient::connect(off_a.addr()).expect("connect");
        let mut c_off_b = ServeClient::connect(off_b.addr()).expect("connect");
        let mut c_on = ServeClient::connect(on.addr()).expect("connect");
        let mut trio_secs = [0.0f64; 3];
        for sweep in 0..WARMUP_SWEEPS + SWEEPS {
            let mut sweep_secs = [0.0f64; 3];
            for slot in 0..3 {
                let role = (slot + sweep + trio) % 3;
                sweep_secs[role] = match role {
                    0 => burst_secs(&mut c_off_a, queries, slice),
                    1 => burst_secs(&mut c_on, queries, slice),
                    _ => burst_secs(&mut c_off_b, queries, slice),
                };
            }
            if sweep < WARMUP_SWEEPS {
                continue; // warmup: caches, branch predictors, socket buffers
            }
            for (total, s) in trio_secs.iter_mut().zip(sweep_secs) {
                *total += s;
            }
        }
        drop((c_off_a, c_off_b, c_on));
        off_a.shutdown();
        off_b.shutdown();
        on.shutdown();
        let n = SWEEPS * slice;
        // trio_secs[role]: 0 = untraced a, 1 = traced, 2 = untraced b.
        let qps = trio_secs.map(|s| n as f64 / s);
        let untraced = (qps[0] + qps[2]) / 2.0;
        let overhead = (untraced - qps[1]) / untraced * 100.0;
        eprintln!(
            "overhead trio {}/{TRIOS}: untraced {:.0}/{:.0} qps, traced {:.0} qps ({overhead:+.2}%)",
            trio + 1,
            qps[0],
            qps[2],
            qps[1],
        );
        trio_overhead.push(overhead);
        trio_aa.push((qps[0] - qps[2]).abs() / untraced * 100.0);
        trio_untraced.push(untraced);
        trio_traced.push(qps[1]);
    }

    Overhead {
        untraced_qps: median(&mut trio_untraced),
        traced_qps: median(&mut trio_traced),
        trace_overhead_pct: median(&mut trio_overhead.clone()),
        disabled_aa_pct: median(&mut trio_aa),
        trio_overhead_pct: trio_overhead,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let threads: usize = flag_value("--threads")
        .map(|v| v.parse().expect("--threads needs an integer"))
        .unwrap_or(4);
    let clients: usize = flag_value("--clients")
        .map(|v| v.parse().expect("--clients needs an integer"))
        .unwrap_or(16);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (avg_len, max_depth, requests) = if quick { (80, 4, 640) } else { (240, 6, 6400) };

    // Fixture: a trained 4-cluster model over moderately long sequences,
    // so scoring (not loopback framing) dominates each request.
    let db = SyntheticSpec {
        sequences: 48,
        clusters: 4,
        avg_len,
        alphabet: 12,
        outlier_fraction: 0.0,
        seed: 17,
    }
    .generate();
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(4)
            .with_significance(5)
            .with_max_depth(max_depth)
            .with_max_iterations(4)
            .with_seed(9),
    )
    .run(&db);
    let model_path =
        std::env::temp_dir().join(format!("cluseq_bench_serve_{}.cseq", std::process::id()));
    let saved = SavedModel::from_outcome(&outcome);
    let mut f = std::fs::File::create(&model_path).expect("create model file");
    saved.save(&mut f).expect("save model");
    drop(f);

    let model = ServeModel::load(&model_path, None, ScanKernel::Compiled, 1).expect("load model");
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        max_batch: 64,
        kernel: ScanKernel::Compiled,
        frame_timeout: Duration::from_secs(30),
        watch_sighup: false,
    };
    let obs = Arc::new(
        ServeObs::new(TraceSession::in_memory().shared_arc(), &ObsConfig::default())
            .expect("open obs"),
    );
    let trace = Arc::clone(obs.registry());
    let server = Server::start(model, None, &config, Some(obs)).expect("start server");
    let queries: Vec<Vec<Symbol>> = (0..db.len())
        .map(|i| db.sequence(i).symbols().to_vec())
        .collect();

    eprintln!(
        "serving {} clusters on {} ({} cores, {threads} scoring threads)",
        saved.cluster_count(),
        server.addr(),
        cores
    );
    let single = run_single(server.addr(), &queries, requests, &trace);
    let batched = run_batched(server.addr(), &queries, clients, requests, &trace);
    server.shutdown();

    let overhead = measure_overhead(&model_path, &config, &queries, requests);
    let _ = std::fs::remove_file(&model_path);

    let speedup = batched.qps / single.qps;
    let row = |name: String, s: &PhaseStats| {
        vec![
            name,
            format!("{:.0}", s.qps),
            format!("{:.0}", s.p50_us),
            format!("{:.0}", s.p95_us),
            format!("{:.0}", s.p99_us),
            format!("{:.1}", s.mean_queue_wait_us),
        ]
    };
    print_table(
        "serve: single-in-flight vs batched concurrent load (traced)",
        &["phase", "qps", "p50 (us)", "p95 (us)", "p99 (us)", "queue wait (us)"],
        &[
            row("single".into(), &single),
            row(format!("batched x{clients}"), &batched),
        ],
    );
    println!("\nbatched/single throughput: {speedup:.2}x (target >= 3x on >= 4 cores; this host: {cores})");
    println!(
        "tracing overhead: {:.2}% (traced {:.0} vs untraced {:.0} qps, budget < 3%); untraced A/A noise {:.2}% (budget < 1%)",
        overhead.trace_overhead_pct, overhead.traced_qps, overhead.untraced_qps, overhead.disabled_aa_pct
    );

    let peak_rss = peak_rss_bytes().unwrap_or(0);
    let phase_json = |s: &PhaseStats| {
        format!(
            "{{\"qps\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"mean_queue_wait_us\": {:.1}}}",
            s.qps, s.p50_us, s.p95_us, s.p99_us, s.mean_queue_wait_us,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"quick\": {quick},\n  \"peak_rss_bytes\": {peak_rss},\n  \"cores\": {cores},\n  \
         \"threads\": {threads},\n  \"clients\": {clients},\n  \"requests_per_phase\": {requests},\n  \
         \"traced\": true,\n  \
         \"single\": {},\n  \
         \"batched\": {},\n  \
         \"speedup\": {speedup:.4},\n  \
         \"overhead\": {{\"untraced_qps\": {:.1}, \"traced_qps\": {:.1}, \"trace_overhead_pct\": {:.3}, \"disabled_aa_pct\": {:.3}, \"trio_overhead_pct\": [{}]}},\n  \
         \"note\": \"overhead numbers are medians of per-trio estimates over 16 respawned server trios, 64 order-rotated fine-grained sweeps each; noisy when cores=1 because client and server share one hardware thread\"\n}}\n",
        phase_json(&single),
        phase_json(&batched),
        overhead.untraced_qps,
        overhead.traced_qps,
        overhead.trace_overhead_pct,
        overhead.disabled_aa_pct,
        overhead
            .trio_overhead_pct
            .iter()
            .map(|v| format!("{v:.3}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
