//! Load-generates the serve daemon and records `BENCH_serve.json`.
//!
//! Two phases against an in-process `cluseq serve` instance on a
//! loopback socket, both issuing ASSIGN queries drawn from the training
//! database:
//!
//! 1. **single-in-flight** — one connection, strictly sequential
//!    request/response; the baseline a naive client sees.
//! 2. **batched** — `--clients` (default 16) closed-loop connections;
//!    the dispatcher coalesces concurrently queued requests into batches
//!    scored through `parallel_map` at `--threads` (default 4).
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin bench_serve \
//!     [--quick] [--threads N] [--clients N] [--out BENCH_serve.json]
//! ```
//!
//! The target trajectory is batched throughput ≥ 3× the single-in-flight
//! qps at `--threads 4`. That ratio needs ≥ 4 cores: batching converts
//! idle round-trip gaps into parallel scoring, so on a single-core host
//! (the JSON records `cores`) the two phases are both CPU-bound and the
//! ratio only reflects amortized wakeup overhead.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use cluseq_bench::{flag_value, peak_rss_bytes, print_table};
use cluseq_core::persist::SavedModel;
use cluseq_core::serve::client::ServeClient;
use cluseq_core::serve::model::ServeModel;
use cluseq_core::serve::{ServeConfig, Server};
use cluseq_core::{Cluseq, CluseqParams, ScanKernel};
use cluseq_datagen::SyntheticSpec;
use cluseq_seq::Symbol;

struct PhaseStats {
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx] as f64 / 1_000.0
}

fn stats(total: usize, wall: Duration, mut latencies_ns: Vec<u64>) -> PhaseStats {
    latencies_ns.sort_unstable();
    PhaseStats {
        qps: total as f64 / wall.as_secs_f64(),
        p50_us: percentile(&latencies_ns, 0.50),
        p99_us: percentile(&latencies_ns, 0.99),
    }
}

/// One connection, one request in flight at a time.
fn run_single(addr: std::net::SocketAddr, queries: &[Vec<Symbol>], requests: usize) -> PhaseStats {
    let mut client = ServeClient::connect(addr).expect("connect");
    for q in queries.iter().take(64) {
        client.assign(q).expect("warmup assign");
    }
    let mut latencies = Vec::with_capacity(requests);
    let start = Instant::now();
    for i in 0..requests {
        let q = &queries[i % queries.len()];
        let sent = Instant::now();
        client.assign(q).expect("assign");
        latencies.push(sent.elapsed().as_nanos() as u64);
    }
    stats(requests, start.elapsed(), latencies)
}

/// `clients` closed-loop connections hammering concurrently.
fn run_batched(
    addr: std::net::SocketAddr,
    queries: &[Vec<Symbol>],
    clients: usize,
    requests: usize,
) -> PhaseStats {
    let per_client = requests / clients;
    let barrier = Barrier::new(clients + 1);
    let (wall, latencies) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    for q in queries.iter().take(8) {
                        client.assign(q).expect("warmup assign");
                    }
                    barrier.wait();
                    let mut latencies = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        // Stagger starting offsets so batches mix queries.
                        let q = &queries[(i + c * 7) % queries.len()];
                        let sent = Instant::now();
                        client.assign(q).expect("assign");
                        latencies.push(sent.elapsed().as_nanos() as u64);
                    }
                    latencies
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        let latencies: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread panicked"))
            .collect();
        (start.elapsed(), latencies)
    });
    stats(per_client * clients, wall, latencies)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let threads: usize = flag_value("--threads")
        .map(|v| v.parse().expect("--threads needs an integer"))
        .unwrap_or(4);
    let clients: usize = flag_value("--clients")
        .map(|v| v.parse().expect("--clients needs an integer"))
        .unwrap_or(16);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (avg_len, max_depth, requests) = if quick { (80, 4, 640) } else { (240, 6, 6400) };

    // Fixture: a trained 4-cluster model over moderately long sequences,
    // so scoring (not loopback framing) dominates each request.
    let db = SyntheticSpec {
        sequences: 48,
        clusters: 4,
        avg_len,
        alphabet: 12,
        outlier_fraction: 0.0,
        seed: 17,
    }
    .generate();
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(4)
            .with_significance(5)
            .with_max_depth(max_depth)
            .with_max_iterations(4)
            .with_seed(9),
    )
    .run(&db);
    let model_path =
        std::env::temp_dir().join(format!("cluseq_bench_serve_{}.cseq", std::process::id()));
    let saved = SavedModel::from_outcome(&outcome);
    let mut f = std::fs::File::create(&model_path).expect("create model file");
    saved.save(&mut f).expect("save model");
    drop(f);

    let model = ServeModel::load(&model_path, None, ScanKernel::Compiled, 1).expect("load model");
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        max_batch: 64,
        kernel: ScanKernel::Compiled,
        frame_timeout: Duration::from_secs(30),
        watch_sighup: false,
    };
    let server = Server::start(model, None, &config, None).expect("start server");
    let queries: Vec<Vec<Symbol>> = (0..db.len())
        .map(|i| db.sequence(i).symbols().to_vec())
        .collect();

    eprintln!(
        "serving {} clusters on {} ({} cores, {threads} scoring threads)",
        saved.cluster_count(),
        server.addr(),
        cores
    );
    let single = run_single(server.addr(), &queries, requests);
    let batched = run_batched(server.addr(), &queries, clients, requests);
    server.shutdown();
    let _ = std::fs::remove_file(&model_path);

    let speedup = batched.qps / single.qps;
    print_table(
        "serve: single-in-flight vs batched concurrent load",
        &["phase", "qps", "p50 (us)", "p99 (us)"],
        &[
            vec![
                "single".into(),
                format!("{:.0}", single.qps),
                format!("{:.0}", single.p50_us),
                format!("{:.0}", single.p99_us),
            ],
            vec![
                format!("batched x{clients}"),
                format!("{:.0}", batched.qps),
                format!("{:.0}", batched.p50_us),
                format!("{:.0}", batched.p99_us),
            ],
        ],
    );
    println!("\nbatched/single throughput: {speedup:.2}x (target >= 3x on >= 4 cores; this host: {cores})");

    let peak_rss = peak_rss_bytes().unwrap_or(0);
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"quick\": {quick},\n  \"peak_rss_bytes\": {peak_rss},\n  \"cores\": {cores},\n  \
         \"threads\": {threads},\n  \"clients\": {clients},\n  \"requests_per_phase\": {requests},\n  \
         \"single\": {{\"qps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},\n  \
         \"batched\": {{\"qps\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}},\n  \
         \"speedup\": {speedup:.4}\n}}\n",
        single.qps, single.p50_us, single.p99_us, batched.qps, batched.p50_us, batched.p99_us,
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
