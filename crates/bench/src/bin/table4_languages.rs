//! **Table 4** — natural-language sentence clustering.
//!
//! Paper (600 sentences per language + 100 noise, spaces stripped):
//!
//! |            | English | Chinese | Japanese |
//! |------------|---------|---------|----------|
//! | Precision %| 86      | 79      | 81       |
//! | Recall %   | 84      | 78      | 80       |
//!
//! Shape to reproduce: all three languages separate well; English best
//! (distinct "th"/"he" statistics); the paper additionally observes that
//! mislabeled English mostly lands in Chinese (shared fragments like
//! "ch", "sh") — we report that confusion direction too.
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin table4_languages [--scale f] [--full]
//! ```

use cluseq_bench::{pct, print_table, run_and_score, secs, Scale};
use cluseq_core::CluseqParams;
use cluseq_datagen::{Language, LanguageSpec};
use cluseq_eval::{Confusion, MatchStrategy};

const PAPER: [(&str, u32, u32); 3] = [
    ("English", 86, 84),
    ("Chinese", 79, 78),
    ("Japanese", 81, 80),
];

fn main() {
    let scale = Scale::from_env();
    let spec = LanguageSpec {
        sentences_per_language: scale.count(200, 600, 30),
        noise_sentences: scale.count(33, 100, 5),
        words_per_sentence: (20, 40),
        seed: scale.seed.wrapping_add(2002),
    };
    let db = spec.generate();
    println!(
        "corpus: {} sentences ({} per language + {} noise)",
        db.len(),
        spec.sentences_per_language,
        spec.noise_sentences
    );

    let scored = run_and_score(
        &db,
        CluseqParams::default()
            .with_initial_clusters(3)
            .with_significance(8)
            .with_max_depth(4)
            .with_seed(scale.seed),
    );
    println!(
        "CLUSEQ: {} clusters, {}",
        scored.clusters,
        secs(scored.seconds)
    );

    let confusion = Confusion::new(
        &db.labels(),
        &scored.outcome.membership_lists(),
        MatchStrategy::Hungarian,
    );
    let metrics = confusion.class_metrics();
    let mut rows = Vec::new();
    for (label, (name, paper_p, paper_r)) in PAPER.iter().enumerate() {
        let Some(m) = metrics.iter().find(|m| m.class == label as u32) else {
            continue;
        };
        rows.push(vec![
            name.to_string(),
            format!("{paper_p}"),
            pct(m.precision),
            format!("{paper_r}"),
            pct(m.recall),
        ]);
    }
    print_table(
        "Table 4: language clustering (paper vs measured)",
        &["Language", "paper P%", "ours P%", "paper R%", "ours R%"],
        &rows,
    );

    // Confusion direction: where do mislabeled English sentences go?
    let english_cluster = metrics
        .iter()
        .find(|m| m.class == 0)
        .and_then(|m| m.cluster);
    let mut into: [usize; 3] = [0; 3];
    for (i, _, label) in db.iter() {
        if label != Some(0) {
            continue;
        }
        let Some(best) = scored.outcome.best_cluster[i] else {
            continue;
        };
        if Some(best) == english_cluster {
            continue;
        }
        // Which language's matched cluster captured it?
        for m in &metrics {
            if m.cluster == Some(best) && m.class < 3 {
                into[m.class as usize] += 1;
            }
        }
    }
    let _ = Language::ALL; // label order: 0 English, 1 Chinese, 2 Japanese
    println!(
        "\nmislabeled English sentences landing in: Chinese {}, Japanese {} \
         (the paper reports mostly Chinese)",
        into[1], into[2]
    );
}
