//! Records the scan-kernel perf trajectory as `BENCH_scan.json`.
//!
//! Times the same grid as the `scan_kernel` Criterion bench — interpreted
//! tree walk vs compiled automaton, per probe symbol — and writes one
//! machine-readable JSON file so successive commits can be compared
//! without parsing Criterion's output directory.
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin bench_scan \
//!     [--quick] [--out BENCH_scan.json]
//! ```
//!
//! `--quick` shrinks the probe set and repetition count to a smoke-test
//! size (CI uses it to prove the harness runs; the numbers are noisy).
//! The target trajectory for the full run is a ≥2× median speedup of the
//! compiled kernel over the interpreted one.

use std::time::Instant;

use cluseq_bench::scan_kernel::{configs, ScanFixture};
use cluseq_bench::{flag_value, print_table};

/// Median of a sample; the sample is consumed (sorted in place).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// ns/symbol for `reps` timed passes of `f`, one sample per pass.
fn time_passes(reps: usize, symbols: usize, mut f: impl FnMut() -> f64) -> Vec<f64> {
    let mut sink = 0.0;
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        sink += f();
        samples.push(start.elapsed().as_nanos() as f64 / symbols as f64);
    }
    assert!(sink.is_finite() || sink.is_nan(), "keep the passes live");
    samples
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_scan.json".to_string());
    let (probes, warmup, reps) = if quick { (8, 1, 5) } else { (32, 3, 21) };

    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut speedups = Vec::new();
    for cfg in configs() {
        let fx = ScanFixture::build(cfg, probes);
        let symbols = fx.symbols();
        for _ in 0..warmup {
            fx.run_interpreted();
            fx.run_compiled();
        }
        let interpreted = median(time_passes(reps, symbols, || fx.run_interpreted()));
        let compiled = median(time_passes(reps, symbols, || fx.run_compiled()));
        let speedup = interpreted / compiled;
        speedups.push(speedup);
        rows.push(vec![
            cfg.to_string(),
            fx.compiled.state_count().to_string(),
            format!("{interpreted:.1}"),
            format!("{compiled:.1}"),
            format!("{speedup:.2}x"),
        ]);
        entries.push(format!(
            "    {{\"config\": \"{cfg}\", \"alphabet\": {}, \"avg_len\": {}, \
             \"states\": {}, \"interpreted_ns_per_symbol\": {interpreted:.3}, \
             \"compiled_ns_per_symbol\": {compiled:.3}, \"speedup\": {speedup:.4}}}",
            cfg.alphabet,
            cfg.avg_len,
            fx.compiled.state_count(),
        ));
    }

    let median_speedup = median(speedups);
    print_table(
        "scan kernel: interpreted vs compiled (median ns/symbol)",
        &["config", "states", "interp", "compiled", "speedup"],
        &rows,
    );
    println!("\nmedian speedup across the grid: {median_speedup:.2}x (target >= 2x)");

    let json = format!(
        "{{\n  \"bench\": \"scan_kernel\",\n  \"unit\": \"ns_per_symbol\",\n  \
         \"quick\": {quick},\n  \"median_speedup\": {median_speedup:.4},\n  \
         \"configs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
