//! Records the scan-kernel perf trajectory as `BENCH_scan.json`.
//!
//! Times the same grid as the `scan_kernel` Criterion bench across the
//! full `--scan-kernel` matrix — interpreted tree walk, compiled
//! automaton, batched lane-interleaved driver, quantized i16 table, and
//! the quantized+batched combination — per probe symbol, and writes one
//! machine-readable JSON file so successive commits can be compared
//! without parsing Criterion's output directory. Every measurement
//! records its median *and* its sample variance, so a regression can be
//! told apart from a noisy run without re-benching.
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin bench_scan \
//!     [--quick] [--out BENCH_scan.json]
//! ```
//!
//! `--quick` shrinks the probe set and repetition count to a smoke-test
//! size (CI uses it to prove the harness runs; the numbers are noisy).
//! The target trajectory for the full run: the compiled kernel ≥2× over
//! interpreted, and at least one of batched/quantized ≥2× over compiled.

use std::time::Instant;

use cluseq_bench::scan_kernel::{configs, ScanFixture};
use cluseq_bench::{flag_value, peak_rss_bytes, print_table};

/// Median and sample variance (n−1) of a sample; sorted in place.
fn stats(mut xs: Vec<f64>) -> (f64, f64) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    let median = if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    };
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var = if n > 1 {
        xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    (median, var)
}

/// Median of a sample, discarding the variance.
fn median(xs: Vec<f64>) -> f64 {
    stats(xs).0
}

/// ns/symbol samples for `reps` *interleaved* rounds: each round times
/// one pass of every kernel back to back, so a contention burst on a
/// shared box lands on all kernels of that round instead of skewing
/// whichever kernel owned that stretch of wall clock — the per-kernel
/// medians stay comparable even when the absolute numbers wander.
fn time_rounds(reps: usize, symbols: usize, passes: &[&dyn Fn() -> f64]) -> Vec<Vec<f64>> {
    let mut sink = 0.0;
    let mut samples = vec![Vec::with_capacity(reps); passes.len()];
    for _ in 0..reps {
        for (kernel, pass) in passes.iter().enumerate() {
            let start = Instant::now();
            sink += pass();
            samples[kernel].push(start.elapsed().as_nanos() as f64 / symbols as f64);
        }
    }
    assert!(sink.is_finite() || sink.is_nan(), "keep the passes live");
    samples
}

/// The measured kernels, in display order; `main` pairs each name with
/// its driver closure over the one shared fixture.
const KERNELS: [&str; 5] = [
    "interpreted",
    "compiled",
    "batched",
    "quantized",
    "quantized_batched",
];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_scan.json".to_string());
    let (probes, warmup, reps) = if quick { (8, 1, 5) } else { (64, 3, 21) };

    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut compiled_speedups = Vec::new();
    let mut batched_speedups = Vec::new();
    let mut quantized_speedups = Vec::new();
    let mut quantized_batched_speedups = Vec::new();
    for cfg in configs() {
        let fx = ScanFixture::build(cfg, probes);
        let symbols = fx.symbols();
        let passes: [&dyn Fn() -> f64; 5] = [
            &|| fx.run_interpreted(),
            &|| fx.run_compiled(),
            &|| fx.run_batched(),
            &|| fx.run_quantized(),
            &|| fx.run_quantized_batched(),
        ];
        for _ in 0..warmup {
            for pass in passes {
                pass();
            }
        }
        let measured: Vec<(f64, f64)> = time_rounds(reps, symbols, &passes)
            .into_iter()
            .map(stats)
            .collect();
        let (interp, compiled, batched, quantized, qbatched) = (
            measured[0].0,
            measured[1].0,
            measured[2].0,
            measured[3].0,
            measured[4].0,
        );
        compiled_speedups.push(interp / compiled);
        batched_speedups.push(compiled / batched);
        quantized_speedups.push(compiled / quantized);
        quantized_batched_speedups.push(compiled / qbatched);
        rows.push(vec![
            cfg.to_string(),
            fx.compiled.state_count().to_string(),
            format!("{interp:.1}"),
            format!("{compiled:.1}"),
            format!("{batched:.1}"),
            format!("{quantized:.1}"),
            format!("{qbatched:.1}"),
            format!("{:.2}x", compiled / qbatched),
        ]);
        let per_kernel: Vec<String> = KERNELS
            .iter()
            .zip(&measured)
            .map(|(name, (med, var))| {
                format!("\"{name}_ns_per_symbol\": {med:.3}, \"{name}_var\": {var:.4}")
            })
            .collect();
        entries.push(format!(
            "    {{\"config\": \"{cfg}\", \"alphabet\": {}, \"avg_len\": {}, \
             \"states\": {}, {}, \"speedup\": {:.4}, \
             \"batched_speedup_vs_compiled\": {:.4}, \
             \"quantized_speedup_vs_compiled\": {:.4}, \
             \"quantized_batched_speedup_vs_compiled\": {:.4}}}",
            cfg.alphabet,
            cfg.avg_len,
            fx.compiled.state_count(),
            per_kernel.join(", "),
            interp / compiled,
            compiled / batched,
            compiled / quantized,
            compiled / qbatched,
        ));
    }

    let median_speedup = median(compiled_speedups);
    let median_batched = median(batched_speedups);
    let median_quantized = median(quantized_speedups);
    let median_qbatched = median(quantized_batched_speedups);
    print_table(
        "scan kernel matrix (median ns/symbol)",
        &[
            "config", "states", "interp", "compiled", "batched", "quant", "q+batch", "q+b/comp",
        ],
        &rows,
    );
    println!(
        "\nmedian speedups across the grid: compiled {median_speedup:.2}x over interpreted \
         (target >= 2x); vs compiled: batched {median_batched:.2}x, quantized \
         {median_quantized:.2}x, quantized+batched {median_qbatched:.2}x (target >= 2x for \
         batched and/or quantized)"
    );

    let peak_rss = peak_rss_bytes().unwrap_or(0);
    let json = format!(
        "{{\n  \"bench\": \"scan_kernel\",\n  \"unit\": \"ns_per_symbol\",\n  \
         \"quick\": {quick},\n  \"peak_rss_bytes\": {peak_rss},\n  \
         \"median_speedup\": {median_speedup:.4},\n  \
         \"median_batched_speedup_vs_compiled\": {median_batched:.4},\n  \
         \"median_quantized_speedup_vs_compiled\": {median_quantized:.4},\n  \
         \"median_quantized_batched_speedup_vs_compiled\": {median_qbatched:.4},\n  \
         \"configs\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
}
