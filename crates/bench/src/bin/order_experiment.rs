//! **§6.3 examination-order study** — fixed vs random vs cluster-based.
//!
//! Paper: fixed order 82%, random order 83%, cluster-based order 65% — the
//! cluster-based order "impairs the algorithm's ability to break the
//! barrier of local optimum".
//!
//! Each order is run over several RNG seeds and the mean/min/max accuracy
//! reported: at reduced scale the order effect is heavily seed-dependent.
//! **Reproduction note (see EXPERIMENTS.md):** our implementation does
//! *not* show the paper's systematic cluster-based penalty — most
//! plausibly because our final assignment pass re-scores every sequence
//! against the final models, repairing exactly the kind of entrenchment
//! the paper attributes to cluster-grouped scanning.
//!
//! ```sh
//! cargo run --release -p cluseq-bench --bin order_experiment [--scale f] [--full]
//! ```

use cluseq_bench::{print_table, run_and_score, Scale};
use cluseq_core::{CluseqParams, ExaminationOrder};
use cluseq_datagen::SyntheticSpec;

fn main() {
    let scale = Scale::from_env();
    let spec = SyntheticSpec {
        sequences: scale.count(800, 100_000, 100),
        clusters: scale.count(10, 50, 3),
        avg_len: scale.count(200, 1000, 50),
        alphabet: 100,
        outlier_fraction: 0.05,
        seed: scale.seed,
    };
    println!(
        "synthetic database: {} sequences, {} clusters; 5 seeds per order",
        spec.sequences, spec.clusters
    );

    let orders = [
        ("fixed", ExaminationOrder::Fixed, 82.0),
        ("random", ExaminationOrder::Random, 83.0),
        ("cluster-based", ExaminationOrder::ClusterBased, 65.0),
    ];
    let mut rows = Vec::new();
    for (name, order, paper_acc) in orders {
        let mut accs = Vec::new();
        for run in 0..5u64 {
            let db = SyntheticSpec {
                seed: spec.seed.wrapping_add(run * 101),
                ..spec
            }
            .generate();
            let scored = run_and_score(
                &db,
                CluseqParams::default()
                    .with_initial_clusters(spec.clusters)
                    // Deliberately COLD start: the paper's order experiment
                    // is about escaping local optima during threshold
                    // adaptation, which a warm start would define away.
                    .with_initial_threshold(1.0005)
                    .with_significance(10)
                    .with_max_depth(6)
                    .with_order(order)
                    .with_seed(scale.seed.wrapping_add(run)),
            );
            accs.push(scored.accuracy);
            eprintln!("{name} run {run}: {:.3}", scored.accuracy);
        }
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        let min = accs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = accs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        rows.push(vec![
            name.to_string(),
            format!("{paper_acc:.0}"),
            format!("{:.1}", mean * 100.0),
            format!("{:.1}", min * 100.0),
            format!("{:.1}", max * 100.0),
        ]);
    }
    print_table(
        "Examination order: accuracy over 5 seeds (paper vs measured)",
        &["order", "paper acc %", "mean %", "min %", "max %"],
        &rows,
    );
    println!(
        "\nreproduction note: the paper's cluster-based penalty (65% vs 82%) \
         does not emerge here — our final assignment pass re-scores every \
         sequence against the final models, repairing order-induced \
         entrenchment. Recorded as a deviation in EXPERIMENTS.md."
    );
}
