//! The [`ConditionalModel`] abstraction.
//!
//! CLUSEQ's similarity dynamic program only needs *one* operation from a
//! cluster model: the conditional probability of the next symbol given a
//! preceding context. Abstracting it as a trait lets the similarity code be
//! tested against hand-built probability tables (e.g. the paper's Table 1
//! worked example) and lets alternative models plug into the same driver.

use cluseq_seq::Symbol;

/// A conditional probability model `P(next | context)` over a fixed
/// alphabet.
pub trait ConditionalModel {
    /// Number of distinct symbols the model covers.
    fn alphabet_size(&self) -> usize;

    /// The (possibly smoothed) conditional probability of observing `next`
    /// immediately after `context`. Implementations are free to truncate
    /// `context` (the PST uses its longest significant suffix).
    fn predict(&self, context: &[Symbol], next: Symbol) -> f64;

    /// Probability of generating `segment` symbol-by-symbol under this
    /// model: `∏ᵢ P(segment[i] | segment[..i])`.
    fn segment_prob(&self, segment: &[Symbol]) -> f64 {
        let mut p = 1.0;
        for i in 0..segment.len() {
            p *= self.predict(&segment[..i], segment[i]);
        }
        p
    }
}

impl<M: ConditionalModel + ?Sized> ConditionalModel for &M {
    fn alphabet_size(&self) -> usize {
        (**self).alphabet_size()
    }

    fn predict(&self, context: &[Symbol], next: Symbol) -> f64 {
        (**self).predict(context, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A memoryless mock: P(next | ·) = table[next].
    struct Memoryless(Vec<f64>);

    impl ConditionalModel for Memoryless {
        fn alphabet_size(&self) -> usize {
            self.0.len()
        }
        fn predict(&self, _context: &[Symbol], next: Symbol) -> f64 {
            self.0[next.index()]
        }
    }

    #[test]
    fn segment_prob_multiplies_conditionals() {
        let m = Memoryless(vec![0.25, 0.75]);
        let seg = [Symbol(1), Symbol(1), Symbol(0)];
        assert!((m.segment_prob(&seg) - 0.75 * 0.75 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn segment_prob_of_empty_segment_is_one() {
        let m = Memoryless(vec![1.0]);
        assert_eq!(m.segment_prob(&[]), 1.0);
    }

    #[test]
    fn reference_impl_delegates() {
        let m = Memoryless(vec![0.5, 0.5]);
        let r: &dyn ConditionalModel = &m;
        assert_eq!(r.alphabet_size(), 2);
        let by_ref: &Memoryless = &m;
        assert_eq!(by_ref.predict(&[], Symbol(0)), 0.5);
        assert_eq!(r.predict(&[], Symbol(0)), 0.5);
    }
}
