//! Distribution-distance measures between cluster models — the similarity
//! approach the paper *rejects* (§2), implemented so the rejection is
//! reproducible.
//!
//! The paper considers comparing two conditional probability distributions
//! directly, via the **variational distance**
//! `V(P₁,P₂) = Σ_σ |P₁(σ) − P₂(σ)|` or the symmetrized
//! **Kullback–Leibler divergence**
//! `J(P₁,P₂) = Σ_σ (P₁(σ) − P₂(σ))·ln(P₁(σ)/P₂(σ))`, where σ ranges over
//! all segments up to length L — and dismisses both because `|Ω| =
//! O(|ℑ|^L)`: *"the computational complexity of calculating the difference
//! between two probability distributions is exponential with respect to
//! the length of the segment."* The `divergence` Criterion bench plots
//! exactly that blow-up against the prediction-based similarity the paper
//! adopts instead.
//!
//! Probabilities here are chain products of (smoothed) conditional
//! predictions, `P(σ) = Π P(sᵢ | s₁…sᵢ₋₁)`, so for each length k the
//! segment probabilities form a distribution over ℑᵏ.

use cluseq_seq::Symbol;

use crate::model::ConditionalModel;

/// Accumulator visiting every segment up to `max_len` with both models'
/// chain probabilities, via DFS over the segment tree.
fn walk_segments<M1: ConditionalModel, M2: ConditionalModel>(
    a: &M1,
    b: &M2,
    max_len: usize,
    visit: &mut impl FnMut(f64, f64),
) {
    assert_eq!(
        a.alphabet_size(),
        b.alphabet_size(),
        "models must share an alphabet"
    );
    let n = a.alphabet_size();
    // Explicit stack: (prefix, prob_a, prob_b).
    let mut prefix: Vec<Symbol> = Vec::with_capacity(max_len);
    #[allow(clippy::too_many_arguments)] // recursive DFS helper
    fn rec<M1: ConditionalModel, M2: ConditionalModel>(
        a: &M1,
        b: &M2,
        n: usize,
        max_len: usize,
        prefix: &mut Vec<Symbol>,
        pa: f64,
        pb: f64,
        visit: &mut impl FnMut(f64, f64),
    ) {
        if prefix.len() == max_len {
            return;
        }
        for s in 0..n as u16 {
            let sym = Symbol(s);
            let qa = pa * a.predict(prefix, sym);
            let qb = pb * b.predict(prefix, sym);
            visit(qa, qb);
            prefix.push(sym);
            rec(a, b, n, max_len, prefix, qa, qb, visit);
            prefix.pop();
        }
    }
    rec(a, b, n, max_len, &mut prefix, 1.0, 1.0, visit);
}

/// The variational distance `Σ_σ |P₁(σ) − P₂(σ)|` over all segments of
/// length 1..=`max_len`. Cost: O(|ℑ|^max_len) — exponential by
/// construction; keep `max_len` small.
pub fn variational_distance<M1: ConditionalModel, M2: ConditionalModel>(
    a: &M1,
    b: &M2,
    max_len: usize,
) -> f64 {
    let mut total = 0.0;
    walk_segments(a, b, max_len, &mut |pa, pb| total += (pa - pb).abs());
    total
}

/// The symmetrized Kullback–Leibler divergence
/// `Σ_σ (P₁(σ) − P₂(σ))·ln(P₁(σ)/P₂(σ))` over segments of length
/// 1..=`max_len`. Segments with a zero probability under either model are
/// skipped (with smoothing enabled — the default — none are zero). Same
/// exponential cost as [`variational_distance`].
pub fn kl_divergence<M1: ConditionalModel, M2: ConditionalModel>(
    a: &M1,
    b: &M2,
    max_len: usize,
) -> f64 {
    let mut total = 0.0;
    walk_segments(a, b, max_len, &mut |pa, pb| {
        if pa > 0.0 && pb > 0.0 {
            total += (pa - pb) * (pa / pb).ln();
        }
    });
    total
}

/// Number of segments the distance computations enumerate for a given
/// alphabet size and maximum length: `Σ_{k=1..L} n^k`. Useful for the
/// benches' cost reporting.
pub fn segment_space(alphabet: usize, max_len: usize) -> u128 {
    let mut total: u128 = 0;
    let mut pow: u128 = 1;
    for _ in 0..max_len {
        pow = pow.saturating_mul(alphabet as u128);
        total = total.saturating_add(pow);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PstParams;
    use crate::tree::Pst;
    use cluseq_seq::{Alphabet, Sequence};

    fn build(text: &str) -> Pst {
        let alphabet = Alphabet::from_chars("abc".chars());
        let mut pst = Pst::new(
            3,
            PstParams::default()
                .with_significance(1)
                .with_smoothing(0.01),
        );
        pst.add_sequence(&Sequence::parse_str(&alphabet, text).unwrap());
        pst
    }

    #[test]
    fn distance_to_self_is_zero() {
        let pst = build("abcabcab");
        assert!(variational_distance(&pst, &pst, 3).abs() < 1e-12);
        assert!(kl_divergence(&pst, &pst, 3).abs() < 1e-12);
    }

    #[test]
    fn different_models_have_positive_distance() {
        let a = build("abababab");
        let b = build("cccccccc");
        assert!(variational_distance(&a, &b, 3) > 0.5);
        assert!(kl_divergence(&a, &b, 3) > 0.5);
    }

    #[test]
    fn distances_are_symmetric() {
        let a = build("abcabc");
        let b = build("bcabca");
        let v1 = variational_distance(&a, &b, 3);
        let v2 = variational_distance(&b, &a, 3);
        assert!((v1 - v2).abs() < 1e-12);
        let j1 = kl_divergence(&a, &b, 3);
        let j2 = kl_divergence(&b, &a, 3);
        assert!((j1 - j2).abs() < 1e-9, "J is symmetrized by definition");
    }

    #[test]
    fn per_length_probabilities_sum_to_one() {
        // Sanity of the chain-product enumeration: for each fixed length
        // the segment probabilities form a distribution, so V ≤ 2·max_len.
        let a = build("abcabcabc");
        let b = build("aabbcc");
        let v = variational_distance(&a, &b, 4);
        assert!(v <= 2.0 * 4.0 + 1e-9, "V = {v}");
        // And a direct check for length 1.
        let mut total_a = 0.0;
        for s in 0..3u16 {
            total_a += crate::model::ConditionalModel::predict(&a, &[], cluseq_seq::Symbol(s));
        }
        assert!((total_a - 1.0).abs() < 1e-9);
    }

    #[test]
    fn similar_models_are_closer_than_dissimilar_ones() {
        let a1 = build("ababababab");
        let a2 = build("babababa");
        let c = build("cccccccc");
        assert!(
            variational_distance(&a1, &a2, 3) < variational_distance(&a1, &c, 3),
            "two ab-repeat models must be closer than ab vs c"
        );
    }

    #[test]
    fn segment_space_grows_exponentially() {
        assert_eq!(segment_space(2, 3), 2 + 4 + 8);
        assert_eq!(segment_space(10, 2), 110);
        // The paper's point: 100 symbols at L = 8 is astronomically many.
        assert!(segment_space(100, 8) > 10u128.pow(15));
    }

    #[test]
    #[should_panic(expected = "share an alphabet")]
    fn mismatched_alphabets_are_rejected() {
        let a = build("abc");
        let b = Pst::new(5, PstParams::default().with_significance(1));
        variational_distance(&a, &b, 2);
    }
}
