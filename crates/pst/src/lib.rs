//! Probabilistic suffix tree (PST) — the conditional-probability carrier of
//! the CLUSEQ sequence-clustering system (Yang & Wang, ICDE 2003, §3).
//!
//! A PST organizes, for every *significant* segment σ′ observed in a cluster
//! of sequences, the empirical conditional probability distribution
//! `P(s | σ′)` of the next symbol `s` given σ′ as the preceding segment.
//! Two departures from an ordinary suffix tree (both from the paper):
//!
//! 1. the tree is built over **reversed** sequences, so the node for a
//!    context `s_j … s_{i-1}` is reached from the root by reading the
//!    context backwards (`s_{i-1}, s_{i-2}, …`), and the *longest
//!    significant suffix* of any context is found by a single walk that
//!    stops at the significance boundary;
//! 2. each node carries a **probability vector** over next symbols in
//!    addition to its occurrence count.
//!
//! This implementation adds the paper's §5 machinery: a byte-budget with
//! three [pruning strategies](params::PruneStrategy) and the adjusted
//! (smoothed) probability estimation with a minimum probability `p_min`.
//!
//! # Example
//!
//! ```
//! use cluseq_pst::{ConditionalModel, Pst, PstParams};
//! use cluseq_seq::{Alphabet, Sequence};
//!
//! let alphabet = Alphabet::from_chars("ab".chars());
//! let seq = Sequence::parse_str(&alphabet, "ababab").unwrap();
//!
//! let mut pst = Pst::new(alphabet.len(), PstParams::default().with_significance(1));
//! pst.add_sequence(&seq);
//!
//! let a = alphabet.get("a").unwrap();
//! let b = alphabet.get("b").unwrap();
//! // After "a", the next symbol is always "b" in this sequence.
//! assert!(pst.predict(&[a], b) > 0.99);
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod divergence;
pub mod merge;
pub mod model;
pub mod node;
pub mod params;
pub mod prune;
pub mod quant;
pub mod render;
pub mod scanner;
pub mod serial;
pub mod stats;
pub mod tree;

pub use compile::CompiledPst;
pub use divergence::{kl_divergence, variational_distance};
pub use model::ConditionalModel;
pub use node::{Node, NodeId};
pub use params::{PruneStrategy, PstParams};
pub use quant::QuantizedPst;
pub use render::RenderOptions;
pub use scanner::{BatchScanner, ContextScanner};
pub use serial::SerialError;
pub use stats::{PstFootprint, PstStats};
pub use tree::Pst;
