//! Binary persistence for probabilistic suffix trees.
//!
//! A small, versioned, little-endian format written with std only (the
//! workspace deliberately avoids serde *format* crates). Only live nodes
//! are written; arena ids are remapped densely, so a loaded tree is also
//! compacted. Right-extension links are serialized too, preserving the
//! O(l) scanner fast path across a save/load cycle.
//!
//! Layout (version 1):
//!
//! ```text
//! magic "CPST" | version u32 | alphabet u32 | params | node_count u32
//! params: max_depth u32 | significance u64 | memory_limit u64 (MAX=none)
//!       | prune_strategy u8 | smoothing f64 (NaN=none) | prune_target f64
//!       | right_links_intact u8
//! node:  count u64 | depth u16 | edge u16 | parent u32
//!      | right_parent u32 (MAX=none) | right_parent_sym u16
//!      | children (u16 len, then (sym u16, id u32)*)
//!      | next     (u16 len, then (sym u16, cnt u32)*)
//!      | right    (u16 len, then (sym u16, id u32)*)
//! ```

use std::io::{self, Read, Write};

use cluseq_seq::Symbol;

use crate::node::{Node, NodeId};
use crate::params::{PruneStrategy, PstParams};
use crate::tree::Pst;

const MAGIC: &[u8; 4] = b"CPST";
const VERSION: u32 = 1;

/// Errors produced while decoding a serialized tree.
#[derive(Debug)]
pub enum SerialError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Structurally invalid content (message describes the field).
    Corrupt(&'static str),
}

impl From<io::Error> for SerialError {
    fn from(e: io::Error) -> Self {
        SerialError::Io(e)
    }
}

impl std::fmt::Display for SerialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerialError::Io(e) => write!(f, "i/o error: {e}"),
            SerialError::BadMagic => write!(f, "not a CPST file (bad magic)"),
            SerialError::BadVersion(v) => write!(f, "unsupported CPST version {v}"),
            SerialError::Corrupt(what) => write!(f, "corrupt CPST file: {what}"),
        }
    }
}

impl std::error::Error for SerialError {}

// ---- primitive helpers -------------------------------------------------
//
// Public: the core crate's model persistence reuses the same framing.

/// Write a single byte.
pub fn write_u8(w: &mut impl Write, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}
/// Write a `u16` as two little-endian bytes.
pub fn write_u16(w: &mut impl Write, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
/// Write a `u32` as four little-endian bytes.
pub fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
/// Write a `u64` as eight little-endian bytes.
pub fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
/// Write an `f64` as its eight-byte little-endian bit pattern
/// (round-trips NaN payloads exactly).
pub fn write_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

/// Read a single byte.
pub fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}
/// Read a little-endian `u16`.
pub fn read_u16(r: &mut impl Read) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}
/// Read a little-endian `u32`.
pub fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
/// Read a little-endian `u64`.
pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
/// Read a little-endian `f64` bit pattern.
pub fn read_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

/// A safe initial capacity for a decoded collection whose length came from
/// the (possibly hostile) input: enough to avoid reallocation for every
/// honest file, bounded so a corrupt length field cannot command a huge
/// up-front allocation. Decoding loops still push `len` elements — a lying
/// length hits end-of-input long before memory becomes a problem.
pub fn decode_capacity(len: usize) -> usize {
    len.min(64 * 1024)
}

fn write_sym_table<T, W: Write>(
    w: &mut W,
    table: &[(Symbol, T)],
    mut write_val: impl FnMut(&mut W, &T) -> io::Result<()>,
) -> io::Result<()> {
    write_u16(w, table.len() as u16)?;
    for (s, v) in table {
        write_u16(w, s.0)?;
        write_val(w, v)?;
    }
    Ok(())
}

impl Pst {
    /// Serializes the tree to `w`.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        write_u32(w, VERSION)?;
        write_u32(w, self.alphabet_size() as u32)?;
        let p = self.params();
        write_u32(w, p.max_depth as u32)?;
        write_u64(w, p.significance)?;
        write_u64(w, p.memory_limit.map_or(u64::MAX, |m| m as u64))?;
        write_u8(
            w,
            match p.prune_strategy {
                PruneStrategy::SmallestCount => 0,
                PruneStrategy::LongestLabel => 1,
                PruneStrategy::ExpectedVector => 2,
                PruneStrategy::Composite => 3,
            },
        )?;
        write_f64(w, p.smoothing.unwrap_or(f64::NAN))?;
        write_f64(w, p.prune_target_fraction)?;
        write_u8(w, u8::from(self.right_links_intact()))?;

        // Dense remap of live node ids, root first.
        let live: Vec<NodeId> = self.live_node_ids().collect();
        debug_assert_eq!(live.first(), Some(&NodeId::ROOT));
        let mut remap = vec![u32::MAX; live.iter().map(|id| id.index()).max().unwrap_or(0) + 1];
        for (new, id) in live.iter().enumerate() {
            remap[id.index()] = new as u32;
        }
        write_u32(w, live.len() as u32)?;
        for &id in &live {
            let n = self.node(id);
            write_u64(w, n.count)?;
            write_u16(w, n.depth)?;
            write_u16(w, n.edge.0)?;
            write_u32(w, remap[n.parent.index()])?;
            match n.right_parent {
                Some((rp, sym)) => {
                    write_u32(w, remap[rp.index()])?;
                    write_u16(w, sym.0)?;
                }
                None => {
                    write_u32(w, u32::MAX)?;
                    write_u16(w, 0)?;
                }
            }
            write_sym_table(w, &n.children, |w, id| write_u32(w, remap[id.index()]))?;
            write_sym_table(w, &n.next, |w, &c| write_u32(w, c))?;
            write_sym_table(w, &n.right, |w, id| write_u32(w, remap[id.index()]))?;
        }
        Ok(())
    }

    /// Deserializes a tree from `r`.
    pub fn load(r: &mut impl Read) -> Result<Pst, SerialError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(SerialError::BadMagic);
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(SerialError::BadVersion(version));
        }
        let alphabet = read_u32(r)? as usize;
        if alphabet == 0 {
            return Err(SerialError::Corrupt("alphabet size 0"));
        }
        let max_depth = read_u32(r)? as usize;
        let significance = read_u64(r)?;
        let memory_limit = match read_u64(r)? {
            u64::MAX => None,
            m => Some(m as usize),
        };
        let prune_strategy = match read_u8(r)? {
            0 => PruneStrategy::SmallestCount,
            1 => PruneStrategy::LongestLabel,
            2 => PruneStrategy::ExpectedVector,
            3 => PruneStrategy::Composite,
            _ => return Err(SerialError::Corrupt("prune strategy")),
        };
        let smoothing_raw = read_f64(r)?;
        let prune_target_fraction = read_f64(r)?;
        let intact = read_u8(r)? != 0;
        let mut params = PstParams {
            max_depth,
            significance,
            memory_limit,
            prune_strategy,
            smoothing: if smoothing_raw.is_nan() {
                None
            } else {
                Some(smoothing_raw)
            },
            prune_target_fraction,
        };
        // Defensive clamp: validate() would panic on adversarial input.
        if params.max_depth == 0 {
            params.max_depth = 1;
        }

        let node_count = read_u32(r)? as usize;
        if node_count == 0 {
            return Err(SerialError::Corrupt("zero nodes (root missing)"));
        }
        let mut nodes: Vec<Node> = Vec::with_capacity(decode_capacity(node_count));
        let check_id = |raw: u32| -> Result<NodeId, SerialError> {
            if (raw as usize) < node_count {
                Ok(NodeId(raw))
            } else {
                Err(SerialError::Corrupt("node id out of range"))
            }
        };
        for _ in 0..node_count {
            let count = read_u64(r)?;
            let depth = read_u16(r)?;
            let edge = Symbol(read_u16(r)?);
            let parent = check_id(read_u32(r)?)?;
            let rp_raw = read_u32(r)?;
            let rp_sym = read_u16(r)?;
            let right_parent = if rp_raw == u32::MAX {
                None
            } else {
                Some((check_id(rp_raw)?, Symbol(rp_sym)))
            };
            let mut node = Node::new(parent, edge, depth);
            node.count = count;
            node.right_parent = right_parent;
            let children_len = read_u16(r)? as usize;
            for _ in 0..children_len {
                let sym = Symbol(read_u16(r)?);
                let id = check_id(read_u32(r)?)?;
                node.children.push((sym, id));
            }
            let next_len = read_u16(r)? as usize;
            for _ in 0..next_len {
                let sym = Symbol(read_u16(r)?);
                let cnt = read_u32(r)?;
                node.next.push((sym, cnt));
            }
            let right_len = read_u16(r)? as usize;
            for _ in 0..right_len {
                let sym = Symbol(read_u16(r)?);
                let id = check_id(read_u32(r)?)?;
                node.right.push((sym, id));
            }
            // Tables must be sorted for binary search to work.
            if !node.children.windows(2).all(|w| w[0].0 < w[1].0)
                || !node.next.windows(2).all(|w| w[0].0 < w[1].0)
                || !node.right.windows(2).all(|w| w[0].0 < w[1].0)
            {
                return Err(SerialError::Corrupt("unsorted symbol table"));
            }
            nodes.push(node);
        }

        Ok(Pst::from_parts(alphabet, params, nodes, intact))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_seq::{Alphabet, Sequence};

    fn build(text: &str) -> Pst {
        let alphabet = Alphabet::from_chars("abc".chars());
        let mut pst = Pst::new(
            3,
            PstParams::default().with_significance(2).with_max_depth(5),
        );
        pst.add_sequence(&Sequence::parse_str(&alphabet, text).unwrap());
        pst
    }

    fn round_trip(pst: &Pst) -> Pst {
        let mut buf = Vec::new();
        pst.save(&mut buf).unwrap();
        Pst::load(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn round_trip_preserves_counts_and_predictions() {
        let pst = build("abcabcaabbccabacbc");
        let loaded = round_trip(&pst);
        assert_eq!(loaded.total_count(), pst.total_count());
        assert_eq!(loaded.node_count(), pst.node_count());
        assert_eq!(loaded.alphabet_size(), pst.alphabet_size());
        assert_eq!(loaded.params(), pst.params());
        let probe: Vec<Symbol> = "cabacb"
            .chars()
            .map(|c| Symbol("abc".find(c).unwrap() as u16))
            .collect();
        for i in 0..probe.len() {
            for s in 0..3u16 {
                assert_eq!(
                    pst.raw_predict(&probe[..i], Symbol(s)),
                    loaded.raw_predict(&probe[..i], Symbol(s)),
                );
            }
        }
        loaded.check_invariants();
    }

    #[test]
    fn round_trip_preserves_scanner_fast_path() {
        let pst = build("abcabcabc");
        assert!(pst.right_links_intact());
        let loaded = round_trip(&pst);
        assert!(loaded.right_links_intact());
        assert!(loaded.scanner().is_fast());
        // The scanner over the loaded tree matches the original root walk.
        let probe: Vec<Symbol> = vec![Symbol(0), Symbol(1), Symbol(2), Symbol(0)];
        let mut sc = loaded.scanner();
        for i in 0..probe.len() {
            assert_eq!(
                loaded.label(sc.prediction_node()),
                pst.label(pst.prediction_node(&probe[..i]))
            );
            sc.advance(probe[i]);
        }
    }

    #[test]
    fn round_trip_of_pruned_tree_compacts_ids() {
        let mut pst = build("abcabcaabbccabacbcaaccbb");
        pst.prune_to(pst.bytes() / 2);
        let before_nodes = pst.node_count();
        let loaded = round_trip(&pst);
        assert_eq!(loaded.node_count(), before_nodes);
        assert_eq!(loaded.right_links_intact(), pst.right_links_intact());
        loaded.check_invariants();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = Pst::load(&mut &b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, SerialError::BadMagic));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        let err = Pst::load(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, SerialError::BadVersion(99)));
    }

    #[test]
    fn truncated_input_is_an_io_error() {
        let mut buf = Vec::new();
        build("abc").save(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = Pst::load(&mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, SerialError::Io(_)));
    }

    #[test]
    fn out_of_range_node_ids_are_rejected() {
        let mut buf = Vec::new();
        build("ab").save(&mut buf).unwrap();
        // Corrupt the last 4 bytes (some node id or count payload) to a
        // huge value; either Corrupt or a clean parse must result — never
        // a panic.
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        let _ = Pst::load(&mut buf.as_slice());
    }
}
