//! Tree statistics for diagnostics and experiment reporting.

use serde::{Deserialize, Serialize};

use crate::tree::Pst;

/// A snapshot of a tree's shape and budget usage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PstStats {
    /// Live nodes, root included.
    pub nodes: usize,
    /// Nodes with count ≥ the significance threshold `c`.
    pub significant_nodes: usize,
    /// Leaves among the live nodes.
    pub leaves: usize,
    /// Deepest live context length.
    pub max_depth: u16,
    /// Estimated footprint in bytes.
    pub bytes: usize,
    /// Root count (total symbols inserted).
    pub total_count: u64,
}

/// The O(1) slice of [`PstStats`]: the size accounting the tree maintains
/// incrementally on every insert/prune. Cheap enough to capture for every
/// cluster on every iteration (telemetry does), unlike [`Pst::stats`],
/// which walks all live nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PstFootprint {
    /// Live nodes, root included.
    pub nodes: usize,
    /// Estimated footprint in bytes.
    pub bytes: usize,
    /// Root count (total symbols inserted).
    pub total_count: u64,
}

impl Pst {
    /// Reads the incrementally-maintained size counters — constant time,
    /// no tree walk. Agrees with the corresponding [`Pst::stats`] fields.
    pub fn footprint(&self) -> PstFootprint {
        PstFootprint {
            nodes: self.node_count(),
            bytes: self.bytes(),
            total_count: self.total_count(),
        }
    }

    /// Computes a statistics snapshot in one pass over the live nodes.
    pub fn stats(&self) -> PstStats {
        let mut stats = PstStats {
            nodes: 0,
            significant_nodes: 0,
            leaves: 0,
            max_depth: 0,
            bytes: self.bytes(),
            total_count: self.total_count(),
        };
        for id in self.live_node_ids() {
            let n = self.node(id);
            stats.nodes += 1;
            if self.is_significant(id) {
                stats.significant_nodes += 1;
            }
            if n.is_leaf() {
                stats.leaves += 1;
            }
            stats.max_depth = stats.max_depth.max(n.depth);
        }
        stats
    }

    /// Renders a short human-readable summary line.
    pub fn summary(&self) -> String {
        let s = self.stats();
        format!(
            "PST: {} nodes ({} significant, {} leaves), depth {}, {} bytes, count {}",
            s.nodes, s.significant_nodes, s.leaves, s.max_depth, s.bytes, s.total_count
        )
    }
}

/// Structural sanity checks used by tests and debug builds.
impl Pst {
    /// Verifies structural invariants, panicking with a description on the
    /// first violation. Intended for tests; cost is linear in tree size.
    ///
    /// Invariants checked:
    /// 1. child links are mutual (child's parent/edge match);
    /// 2. depths increase by one along edges;
    /// 3. a node's count is at least the sum of its children's counts
    ///    (every occurrence of a longer context is one of the shorter);
    /// 4. a node's successor total never exceeds its count;
    /// 5. the byte estimate matches a fresh recomputation.
    pub fn check_invariants(&self) {
        let mut recomputed_bytes = 0usize;
        for id in self.live_node_ids() {
            let n = self.node(id);
            // bytes() covers the node's own child table, so summing over
            // all live nodes reproduces the tree total exactly.
            recomputed_bytes += n.bytes();
            let mut child_sum = 0u64;
            for &(sym, child_id) in &n.children {
                let c = self.node(child_id);
                assert!(c.live, "child {child_id:?} of {id:?} is dead");
                assert_eq!(c.parent, id, "parent link of {child_id:?}");
                assert_eq!(c.edge, sym, "edge symbol of {child_id:?}");
                assert_eq!(c.depth, n.depth + 1, "depth of {child_id:?}");
                child_sum += c.count;
            }
            assert!(
                n.count >= child_sum,
                "count({id:?}) = {} < sum of child counts {}",
                n.count,
                child_sum
            );
            assert!(
                n.next_total() <= n.count,
                "successor total exceeds count at {id:?}"
            );
        }
        assert_eq!(self.bytes(), recomputed_bytes, "byte estimate drifted");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PstParams;
    use cluseq_seq::{Alphabet, Sequence};

    fn build(text: &str) -> Pst {
        let alphabet = Alphabet::from_chars("abc".chars());
        let mut pst = Pst::new(
            3,
            PstParams::default()
                .with_significance(2)
                .without_smoothing(),
        );
        pst.add_sequence(&Sequence::parse_str(&alphabet, text).unwrap());
        pst
    }

    #[test]
    fn stats_count_nodes_and_depth() {
        let pst = build("abcabc");
        let s = pst.stats();
        assert!(s.nodes > 1);
        assert!(s.max_depth >= 3);
        assert_eq!(s.total_count, 6);
        assert_eq!(s.bytes, pst.bytes());
    }

    #[test]
    fn significant_node_count_respects_threshold() {
        let pst = build("ababab");
        let s = pst.stats();
        // Root + "a" (3) + "b" (3) + "ab"(2) + "ba"(2) + deeper pairs…
        assert!(s.significant_nodes >= 5);
        assert!(s.significant_nodes <= s.nodes);
    }

    #[test]
    fn footprint_agrees_with_full_stats() {
        let pst = build("abcabcaabbcc");
        let f = pst.footprint();
        let s = pst.stats();
        assert_eq!(f.nodes, s.nodes);
        assert_eq!(f.bytes, s.bytes);
        assert_eq!(f.total_count, s.total_count);
    }

    #[test]
    fn invariants_hold_after_insertion() {
        build("abcabcaabbccabc").check_invariants();
    }

    #[test]
    fn invariants_hold_after_pruning() {
        let mut pst = build("abcabcaabbccabcbcbcaacb");
        pst.prune_to(pst.bytes() / 2);
        pst.check_invariants();
    }

    #[test]
    fn summary_is_nonempty() {
        assert!(build("abc").summary().contains("PST:"));
    }
}
