//! Compiling a frozen [`Pst`] into a flat scan automaton.
//!
//! The similarity scan (the dominant cost of CLUSEQ) interprets the tree
//! per symbol: a child lookup (two binary searches), an `O(|next|)`
//! successor-count summation, and two `ln()` calls. Once a cluster's PST
//! is frozen for a scan phase, all of that is a pure function of the
//! current prediction node — so it can be precomputed once. A
//! [`CompiledPst`] flattens the tree into structure-of-arrays form:
//!
//! * a dense `states × alphabet` **goto table** in the style of
//!   Aho–Corasick: `goto[u][s]` is the prediction node of the context
//!   `L(u)·s`, with the scanner's fallback suffix walk resolved at compile
//!   time, so advancing the scan is a single array load;
//! * a matching **log-ratio table**: `ratio[u][s] = ln P(s | L(u)) −
//!   ln p_bg(s)`, exactly the `Xᵢ` term of the X/Y/Z dynamic program, so
//!   the hot loop performs zero `ln()` calls;
//! * per-state **achievable-step bounds** (`best_step[u]` and the global
//!   `max_step_plus`) that let a caller prove, mid-scan, that no extension
//!   can still reach a similarity threshold and exit early.
//!
//! **States.** The automaton's states are *strings*: every read-order
//! prefix of every significant node's label (the empty string — the root
//! context — is state 0). The state after scanning `w` is the longest
//! suffix of `w` that is a state string; the node the state predicts from
//! (its *emit node*) is the root walk applied to the state's own string.
//!
//! The state set is deliberately **larger than the significant node set**:
//! the prefix closure can contain strings whose tree node was pruned away
//! or was never significant. That extra memory is what makes the scan a
//! finite automaton at all. Pruning can remove a shallow node (say `⟨1⟩`)
//! while a deeper node that extends it through a *different* subtree
//! (say `⟨1,0⟩`, a child of `⟨0⟩`) survives. After reading `…,1` the
//! interpreted walk finds no node — but one more symbol later it re-reads
//! the window and lands in `⟨1,0⟩`. An automaton whose states were only
//! the surviving nodes would have collapsed `…,1` into the root and lost
//! the `1` forever; the prefix-closure state `⟨1⟩` (emit node: root, so
//! its ratio row is still bit-identical to the interpreted scan) carries
//! it. Because the walk stops at the first missing-or-insignificant
//! child, the walk on the full context and the walk on its longest
//! state-string suffix always agree — every significant label is a state
//! string, so the matched suffix is at least as long as any walk result.
//!
//! **Goto construction.** States are sorted by (length, lexicographic),
//! so every proper prefix of a state precedes it. In one pass we compute
//! classic Aho–Corasick failure links — `fail(u)` is the longest proper
//! suffix of `u` that is a state, via `fail(u) = goto[fail(prefix(u))]
//! [last(u)]` on already-completed rows — and dense goto rows:
//! `goto[u][s] = u·s` when that string is a state, else
//! `goto[fail(u)][s]` (the root falls back to itself). The prefix
//! closure is also suffix-closed — drop-oldest commutes with
//! drop-newest, and a significant node's parent is significant because
//! counts are monotone — so the failure chain never leaves the state
//! set. This matches the interpreted scanner exactly, pre- *and*
//! post-prune.
//!
//! **Bit-identity.** The ratio table is filled with the *same* `f64`
//! expression chain the interpreted path evaluates per symbol —
//! `next_count as f64 / next_total as f64` (or the `1/|ℑ|` fallback for a
//! successor-less node), then [`Pst::smooth`], then `ln()`, minus the
//! cached background log-probability — so a DP over the compiled tables
//! reproduces the interpreted scan bit for bit as long as the consumer
//! keeps the same operation order.

use cluseq_seq::{BackgroundModel, Symbol};

use crate::node::NodeId;
use crate::tree::Pst;

/// A frozen [`Pst`] flattened into dense scan tables. See the [module
/// docs](self) for construction and the bit-identity contract.
#[derive(Debug, Clone)]
pub struct CompiledPst {
    alphabet: usize,
    /// `states × alphabet`, row-major: the next state after consuming a
    /// symbol in a given state.
    goto_table: Vec<u32>,
    /// `states × alphabet`, row-major: `ln P(s | state) − ln p_bg(s)` —
    /// the DP's `ln Xᵢ` term.
    ratio: Vec<f64>,
    /// Per-state `max_s ratio[state][s]` — the best single-step log ratio
    /// achievable from this state.
    best_step: Vec<f64>,
    /// `max(0, max over all states of best_step)` — an upper bound on the
    /// contribution of any one future position, from any state.
    max_step_plus: f64,
}

impl CompiledPst {
    /// The start state: the empty context, i.e. the tree root.
    pub const START: u32 = 0;

    /// Flattens `pst` against `background` (which supplies the denominator
    /// of the ratio table).
    ///
    /// # Panics
    ///
    /// Panics if the alphabet sizes of the tree and the background model
    /// disagree.
    pub fn compile(pst: &Pst, background: &BackgroundModel) -> Self {
        let n = pst.alphabet_size();
        assert_eq!(
            n,
            background.alphabet_size(),
            "PST and background model must share an alphabet"
        );

        // State strings: every read-order prefix of every significant
        // node's label (see module docs for why the closure — not the node
        // set itself — is the state space). Walking the parent chain emits
        // the label oldest-symbol-first directly: `edge(u)` is the oldest
        // symbol of `L(u)` and `parent(u)` labels `L(u)` minus it.
        let mut strings: Vec<Vec<Symbol>> = Vec::new();
        for id in pst.live_node_ids().filter(|&id| pst.is_significant(id)) {
            let mut label = Vec::with_capacity(pst.node(id).depth as usize);
            let mut cur = id;
            while cur != NodeId::ROOT {
                let node = pst.node(cur);
                label.push(node.edge);
                cur = node.parent;
            }
            for k in 0..=label.len() {
                strings.push(label[..k].to_vec());
            }
        }
        // (length, lexicographic) order: deterministic, prefixes first,
        // root (the empty string) as state 0.
        strings.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        strings.dedup();
        debug_assert!(strings[0].is_empty());

        let states = strings.len();
        let find = |s: &[Symbol]| -> Option<u32> {
            strings
                .binary_search_by(|p| p.len().cmp(&s.len()).then_with(|| p.as_slice().cmp(s)))
                .ok()
                .map(|i| i as u32)
        };

        let mut fail = vec![0u32; states];
        let mut goto_table = vec![0u32; states * n];
        let mut ratio = vec![0.0f64; states * n];
        let mut best_step = vec![f64::NEG_INFINITY; states];
        let mut extended: Vec<Symbol> = Vec::new();

        for u in 0..states {
            let string = &strings[u];
            let row = u * n;

            // Aho–Corasick failure link over completed shorter rows;
            // depth-0 and depth-1 states fail to the root.
            if string.len() >= 2 {
                let prefix = find(&string[..string.len() - 1]).expect("state set is prefix-closed");
                let last = string[string.len() - 1];
                fail[u] = goto_table[fail[prefix as usize] as usize * n + last.index()];
            }

            // The node this state predicts from: the definitional root walk
            // on the state's own string. For states that are genuine
            // significant nodes this is that node; for closure-only states
            // it is whatever shallower node the interpreted scanner would
            // be sitting on.
            let node = pst.node(pst.prediction_node(string));
            let total = node.next_total();
            for s in 0..n {
                let sym = Symbol(s as u16);

                extended.clear();
                extended.extend_from_slice(string);
                extended.push(sym);
                goto_table[row + s] = match find(&extended) {
                    Some(v) => v,
                    None if u == 0 => Self::START,
                    None => goto_table[fail[u] as usize * n + s],
                };

                // The exact expression chain of the interpreted path:
                // `ContextScanner::predict_and_advance` + the similarity DP.
                let raw = if total == 0 {
                    1.0 / n as f64
                } else {
                    node.next_count(sym) as f64 / total as f64
                };
                let x = pst.smooth(raw).ln() - background.ln_prob(sym);
                ratio[row + s] = x;
                if x > best_step[u] {
                    best_step[u] = x;
                }
            }
        }

        let max_step_plus = best_step.iter().fold(0.0f64, |a, &b| a.max(b));

        Self {
            alphabet: n,
            goto_table,
            ratio,
            best_step,
            max_step_plus,
        }
    }

    /// Number of automaton states (the prefix closure of the source
    /// tree's significant node labels).
    pub fn state_count(&self) -> usize {
        self.best_step.len()
    }

    /// Alphabet size shared with the source tree and background model.
    pub fn alphabet_size(&self) -> usize {
        self.alphabet
    }

    /// The DP step from `state` on `sym`: the precomputed
    /// `ln P(sym | state) − ln p_bg(sym)` and the successor state.
    #[inline(always)]
    pub fn step(&self, state: u32, sym: Symbol) -> (f64, u32) {
        let i = state as usize * self.alphabet + sym.index();
        (self.ratio[i], self.goto_table[i])
    }

    /// `max_s ratio[state][s]` — the largest log ratio any single symbol
    /// can contribute from `state`.
    #[inline]
    pub fn best_step(&self, state: u32) -> f64 {
        self.best_step[state as usize]
    }

    /// `max(0, max over all states of best_step)` — no future position can
    /// add more than this to a chain, from anywhere in the automaton.
    #[inline]
    pub fn max_step_plus(&self) -> f64 {
        self.max_step_plus
    }

    /// Heap footprint of the tables, for budget accounting.
    pub fn table_bytes(&self) -> usize {
        self.goto_table.len() * std::mem::size_of::<u32>()
            + self.ratio.len() * std::mem::size_of::<f64>()
            + self.best_step.len() * std::mem::size_of::<f64>()
    }

    /// Quantizes the ratio table to `i16` fixed point (see
    /// [`QuantizedPst`](crate::quant::QuantizedPst)). The exact `f64`
    /// automaton stays the reference; the quantized one trades a bounded,
    /// documented score error for a 4× smaller hot table and an
    /// integer-only DP.
    pub fn quantize(&self) -> crate::quant::QuantizedPst {
        crate::quant::QuantizedPst::from_compiled(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PstParams;
    use cluseq_seq::{Alphabet, Sequence};

    fn build(text: &str, c: u64, smoothing: bool) -> (Alphabet, Pst) {
        let alphabet = Alphabet::from_chars("abc".chars());
        let seq = Sequence::parse_str(&alphabet, text).unwrap();
        let mut params = PstParams::default().with_significance(c).with_max_depth(5);
        if !smoothing {
            params = params.without_smoothing();
        }
        let mut pst = Pst::new(3, params);
        pst.add_sequence(&seq);
        (alphabet, pst)
    }

    /// Drives the compiled automaton and the interpreted scanner over the
    /// same probe and demands identical per-position predictions (to the
    /// bit) and matching states.
    fn assert_tracks_scanner(pst: &Pst, probe: &[Symbol]) {
        let bg = BackgroundModel::uniform(pst.alphabet_size());
        let compiled = CompiledPst::compile(pst, &bg);
        let mut scanner = pst.scanner();
        let mut state = CompiledPst::START;
        for (i, &sym) in probe.iter().enumerate() {
            let p = scanner.predict_and_advance(sym);
            let interpreted_x = p.ln() - bg.ln_prob(sym);
            let (x, next) = compiled.step(state, sym);
            assert_eq!(
                x.to_bits(),
                interpreted_x.to_bits(),
                "position {i}: compiled x {x} vs interpreted {interpreted_x}"
            );
            state = next;
        }
    }

    #[test]
    fn compiled_steps_match_the_scanner_on_training_data() {
        let (alphabet, pst) = build("abcabcaabbccabcbacbca", 2, true);
        let probe = Sequence::parse_str(&alphabet, "abcabcaabbcc").unwrap();
        let symbols: Vec<Symbol> = probe.iter().collect();
        assert_tracks_scanner(&pst, &symbols);
    }

    #[test]
    fn compiled_steps_match_the_scanner_on_unseen_data() {
        let (alphabet, pst) = build("abcabcabcabc", 2, true);
        let probe = Sequence::parse_str(&alphabet, "ccbbaaabcabcbb").unwrap();
        let symbols: Vec<Symbol> = probe.iter().collect();
        assert_tracks_scanner(&pst, &symbols);
    }

    #[test]
    fn compiled_steps_match_after_pruning() {
        let (alphabet, mut pst) = build("abcabcaabbccabacbcabcabc", 1, true);
        pst.prune_to(pst.bytes() / 2);
        let probe = Sequence::parse_str(&alphabet, "abcabacbcabcccba").unwrap();
        let symbols: Vec<Symbol> = probe.iter().collect();
        assert_tracks_scanner(&pst, &symbols);
    }

    #[test]
    fn pruning_a_shallow_node_keeps_automaton_memory() {
        // Regression (found by the kernel_equivalence property suite):
        // pruning removed the depth-1 node ⟨1⟩ while the depth-2 node
        // ⟨1,0⟩ — a child of ⟨0⟩, so in a different subtree — survived.
        // An automaton whose states are only surviving nodes collapses
        // the context `…,1` into the root and can never reach ⟨1,0⟩ on
        // the next symbol; the prefix-closure state ⟨1⟩ carries it.
        let to_seq = |v: &[u16]| Sequence::new(v.iter().map(|&s| Symbol(s)).collect());
        let t1 = to_seq(&[
            0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 1, 1, 0, 0, 0, 1, 0, 0, 0, 1, 1, 1, 1, 1, 0, 0, 0, 1, 1,
            0, 1, 0, 0, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1,
        ]);
        let t2 = to_seq(&[0, 1, 1, 1, 0, 1, 1, 0, 1, 1, 0, 0, 0, 1, 0]);
        let mut params = PstParams::default().with_max_depth(2).with_significance(2);
        params.smoothing = Some(0.01862098843377047);
        let mut pst = Pst::new(2, params);
        pst.add_sequence(&t1);
        pst.add_sequence(&t2);
        pst.prune_to((pst.bytes() as f64 * 0.5217968466275402) as usize);
        let probe: Vec<Symbol> = to_seq(&[
            0, 1, 1, 0, 1, 0, 1, 1, 0, 0, 0, 1, 0, 1, 0, 0, 0, 0, 1, 1, 0, 0, 0, 1, 1, 0, 1, 1, 0,
            1, 1, 1, 0, 1, 0, 1, 0, 1, 0,
        ])
        .iter()
        .collect();
        assert_tracks_scanner(&pst, &probe);
    }

    #[test]
    fn compiled_steps_match_without_smoothing() {
        let (alphabet, pst) = build("abcabcabcabc", 2, false);
        let probe = Sequence::parse_str(&alphabet, "abcabccba").unwrap();
        let symbols: Vec<Symbol> = probe.iter().collect();
        assert_tracks_scanner(&pst, &symbols);
    }

    #[test]
    fn goto_follows_the_prediction_walk() {
        // Exhaustively check goto against the definitional root walk over
        // every reachable state and symbol.
        let (alphabet, pst) = build("abcabcaabbccabcbacbca", 2, true);
        let bg = BackgroundModel::uniform(3);
        let compiled = CompiledPst::compile(&pst, &bg);
        let probe = Sequence::parse_str(&alphabet, "abcbacbcaabbccabc").unwrap();
        let mut context: Vec<Symbol> = Vec::new();
        let mut state = CompiledPst::START;
        for sym in probe.iter() {
            context.push(sym);
            let window_start = context.len().saturating_sub(pst.params().max_depth);
            let walk = pst.prediction_node(&context[window_start..]);
            let (_, next) = compiled.step(state, sym);
            state = next;
            // The state's depth must match the walk's node depth — and the
            // per-step ratios matching bit-for-bit (other tests) pins the
            // distribution; together the automaton tracks the walk.
            assert_eq!(
                compiled.best_step(state).to_bits(),
                {
                    let node = pst.node(walk);
                    let total = node.next_total();
                    let mut best = f64::NEG_INFINITY;
                    for s in 0..3u16 {
                        let raw = if total == 0 {
                            1.0 / 3.0
                        } else {
                            node.next_count(Symbol(s)) as f64 / total as f64
                        };
                        best = best.max(pst.smooth(raw).ln() - bg.ln_prob(Symbol(s)));
                    }
                    best
                }
                .to_bits()
            );
        }
    }

    #[test]
    fn bounds_dominate_every_step() {
        let (alphabet, pst) = build("abcabcaabbccab", 1, true);
        let bg = BackgroundModel::uniform(3);
        let compiled = CompiledPst::compile(&pst, &bg);
        let probe = Sequence::parse_str(&alphabet, "abcbacbca").unwrap();
        let mut state = CompiledPst::START;
        for sym in probe.iter() {
            let (x, next) = compiled.step(state, sym);
            assert!(x <= compiled.best_step(state));
            assert!(x <= compiled.max_step_plus());
            state = next;
        }
        assert!(compiled.max_step_plus() >= 0.0);
    }

    #[test]
    fn trivial_tree_compiles_to_one_state() {
        // Significance higher than any count: only the root is significant.
        let (_, pst) = build("abc", 1000, true);
        let compiled = CompiledPst::compile(&pst, &BackgroundModel::uniform(3));
        assert_eq!(compiled.state_count(), 1);
        assert_eq!(compiled.alphabet_size(), 3);
        for s in 0..3u16 {
            let (_, next) = compiled.step(CompiledPst::START, Symbol(s));
            assert_eq!(next, CompiledPst::START);
        }
        assert!(compiled.table_bytes() > 0);
    }
}
