//! Human-readable rendering of a probabilistic suffix tree.
//!
//! Produces the kind of picture the paper's Figure 1 shows: each node's
//! label, its occurrence count, significance, and its next-symbol
//! probability vector. Intended for debugging, the CLI `inspect`
//! subcommand, and teaching.

use std::fmt::Write as _;

use cluseq_seq::Alphabet;

use crate::node::NodeId;
use crate::tree::Pst;

/// Options for [`Pst::render`].
#[derive(Debug, Clone, Copy)]
pub struct RenderOptions {
    /// Only nodes with count ≥ this are shown (0 shows everything).
    pub min_count: u64,
    /// Depth cutoff (nodes deeper than this are elided).
    pub max_depth: usize,
    /// Cap on rendered nodes (the elision is reported).
    pub max_nodes: usize,
    /// Probability entries below this are not printed.
    pub min_prob: f64,
}

impl Default for RenderOptions {
    fn default() -> Self {
        Self {
            min_count: 0,
            max_depth: usize::MAX,
            max_nodes: 200,
            min_prob: 0.01,
        }
    }
}

impl Pst {
    /// Renders the tree as indented text. Children are visited in symbol
    /// order; each line shows the node label (via `alphabet`), count, a
    /// `*` marker on significant nodes, and the leading next-symbol
    /// probabilities.
    pub fn render(&self, alphabet: &Alphabet, options: RenderOptions) -> String {
        let mut out = String::new();
        let root = self.node(NodeId::ROOT);
        let _ = writeln!(
            out,
            "(root) count={} nodes={} bytes={}",
            root.count,
            self.node_count(),
            self.bytes()
        );
        let mut rendered = 0usize;
        let mut elided = 0usize;
        self.render_children(
            alphabet,
            NodeId::ROOT,
            1,
            &options,
            &mut out,
            &mut rendered,
            &mut elided,
        );
        if elided > 0 {
            let _ = writeln!(out, "… {elided} more nodes elided");
        }
        out
    }

    #[allow(clippy::too_many_arguments)] // internal recursive helper
    fn render_children(
        &self,
        alphabet: &Alphabet,
        id: NodeId,
        depth: usize,
        options: &RenderOptions,
        out: &mut String,
        rendered: &mut usize,
        elided: &mut usize,
    ) {
        if depth > options.max_depth {
            return;
        }
        for &(_, child) in &self.node(id).children {
            let n = self.node(child);
            if n.count < options.min_count {
                continue;
            }
            if *rendered >= options.max_nodes {
                *elided += 1;
                continue;
            }
            *rendered += 1;
            let label = alphabet.render(&self.label(child));
            let marker = if self.is_significant(child) { "*" } else { " " };
            let mut probs: Vec<String> = Vec::new();
            let total = n.next_total();
            if total > 0 {
                let mut entries: Vec<_> = n.next.clone();
                entries.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
                for (sym, c) in entries {
                    let p = c as f64 / total as f64;
                    if p >= options.min_prob {
                        probs.push(format!("{}:{:.2}", alphabet.name(sym), p));
                    }
                }
            }
            let _ = writeln!(
                out,
                "{}{marker}{label:<12} count={:<6} next[{}]",
                "  ".repeat(depth),
                n.count,
                probs.join(" ")
            );
            self.render_children(alphabet, child, depth + 1, options, out, rendered, elided);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PstParams;
    use cluseq_seq::Sequence;

    fn build(text: &str) -> (Alphabet, Pst) {
        let alphabet = Alphabet::from_chars("ab".chars());
        let mut pst = Pst::new(
            2,
            PstParams::default().with_significance(2).with_max_depth(4),
        );
        pst.add_sequence(&Sequence::parse_str(&alphabet, text).unwrap());
        (alphabet, pst)
    }

    #[test]
    fn render_shows_labels_counts_and_probabilities() {
        let (alphabet, pst) = build("ababab");
        let text = pst.render(&alphabet, RenderOptions::default());
        assert!(text.contains("(root) count=6"));
        assert!(text.contains("a "), "single-symbol contexts shown");
        // The "a" context always continues with b.
        assert!(text.contains("b:1.00"), "text:\n{text}");
        // Significant nodes are starred.
        assert!(text.contains("*a"), "text:\n{text}");
    }

    #[test]
    fn min_count_filters_rare_nodes() {
        let (alphabet, pst) = build("aaaaaaab");
        let full = pst.render(&alphabet, RenderOptions::default());
        let filtered = pst.render(
            &alphabet,
            RenderOptions {
                min_count: 3,
                ..Default::default()
            },
        );
        assert!(filtered.len() < full.len());
        assert!(filtered.contains("count=7") || filtered.contains("count=6"));
    }

    #[test]
    fn max_nodes_elides_and_reports() {
        let (alphabet, pst) = build("abababbaabab");
        let text = pst.render(
            &alphabet,
            RenderOptions {
                max_nodes: 3,
                ..Default::default()
            },
        );
        assert!(text.contains("more nodes elided"), "text:\n{text}");
    }

    #[test]
    fn max_depth_limits_rendering() {
        let (alphabet, pst) = build("ababab");
        let text = pst.render(
            &alphabet,
            RenderOptions {
                max_depth: 1,
                ..Default::default()
            },
        );
        // Depth-1 labels only: "a" and "b", no "ab"/"ba".
        assert!(!text.contains("ab "), "text:\n{text}");
    }
}
