//! Memory-budget enforcement (paper §5.1).
//!
//! When a tree outgrows its byte budget, leaves are pruned until the tree
//! fits again. Only leaves are removed — pruning an interior node would
//! orphan the longer contexts beneath it — so subtrees disappear
//! leaf-by-leaf in priority order. The priority is given by the configured
//! [`PruneStrategy`]:
//!
//! * **SmallestCount** — leaves with the smallest occurrence count go first
//!   (they are least likely ever to become significant);
//! * **LongestLabel** — the deepest leaves go first (short-memory: long
//!   contexts contribute least);
//! * **ExpectedVector** — leaves whose next-symbol distribution is closest
//!   (variational distance) to their parent's go first (the parent
//!   substitutes with the least error);
//! * **Composite** — the paper's combined policy: insignificant leaves
//!   first (smallest count, deepest tiebreak), then significant leaves by
//!   expectedness.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::node::NodeId;
use crate::params::PruneStrategy;
use crate::tree::Pst;

/// A heap key: lower sorts first (wrapped in `Reverse` for the max-heap).
/// The `f64` component is compared with `total_cmp`.
#[derive(Debug, PartialEq)]
struct Priority(f64, u64, u64);

impl Eq for Priority {}

impl PartialOrd for Priority {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then(self.1.cmp(&other.1))
            .then(self.2.cmp(&other.2))
    }
}

impl Pst {
    /// Prunes leaves in strategy order until the byte estimate is at most
    /// `target_bytes` (or only the root remains). Returns the number of
    /// nodes removed.
    pub fn prune_to(&mut self, target_bytes: usize) -> usize {
        if self.bytes() <= target_bytes {
            return 0;
        }
        let strategy = self.params().prune_strategy;

        // Seed the heap with all current leaves; as leaves are removed,
        // their parents may become leaves and are pushed in turn. Stale
        // entries (nodes that died or grew children since being pushed) are
        // skipped on pop — each node is pushed at most twice, so the heap
        // stays linear in tree size.
        let mut heap: BinaryHeap<Reverse<(Priority, NodeId)>> = self
            .live_node_ids()
            .filter(|&id| id != NodeId::ROOT && self.node(id).is_leaf())
            .map(|id| Reverse((self.priority(strategy, id), id)))
            .collect();

        let mut removed = 0;
        while self.bytes() > target_bytes {
            let Some(Reverse((_, id))) = heap.pop() else {
                break; // only the root left (or all leaves already pruned)
            };
            {
                let n = self.raw_node(id);
                if !n.live || !n.is_leaf() {
                    continue; // stale entry
                }
            }
            let parent = self.node(id).parent;
            self.release_node(id);
            removed += 1;
            if parent != NodeId::ROOT && self.node(parent).is_leaf() {
                heap.push(Reverse((self.priority(strategy, parent), parent)));
            }
        }
        removed
    }

    fn priority(&self, strategy: PruneStrategy, id: NodeId) -> Priority {
        let n = self.node(id);
        match strategy {
            // Smallest count first; among equals, deepest first.
            PruneStrategy::SmallestCount => Priority(0.0, n.count, u64::MAX - u64::from(n.depth)),
            // Deepest first; among equals, smallest count first.
            PruneStrategy::LongestLabel => Priority(0.0, u64::from(u16::MAX - n.depth), n.count),
            // Most expected (closest to parent) first.
            PruneStrategy::ExpectedVector => Priority(self.divergence_from_parent(id), n.count, 0),
            // Insignificant nodes first (tier 0), by count then depth;
            // significant nodes (tier 1) by expectedness.
            PruneStrategy::Composite => {
                if self.is_significant(id) {
                    Priority(1.0 + self.divergence_from_parent(id), n.count, 0)
                } else {
                    // Map into [0, 1) by ordering on count, then depth.
                    Priority(0.0, n.count, u64::MAX - u64::from(n.depth))
                }
            }
        }
    }

    /// Variational distance `Σ_s |P(s|σ) − P(s|σ′)|` between a node's
    /// next-symbol distribution and its parent's (σ′ = σ with the oldest
    /// symbol dropped). A node with no observed successors carries no
    /// predictive information and reports distance 0 (fully expected).
    pub fn divergence_from_parent(&self, id: NodeId) -> f64 {
        if id == NodeId::ROOT {
            return 0.0;
        }
        let n = self.node(id);
        let p = self.node(n.parent);
        let n_total = n.next_total();
        if n_total == 0 {
            return 0.0;
        }
        let p_total = p.next_total();
        let mut dist = 0.0;
        let mut pi = 0usize;
        let mut ni = 0usize;
        while ni < n.next.len() || pi < p.next.len() {
            let (n_sym, n_cnt) = n.next.get(ni).map_or((u16::MAX, 0), |&(s, c)| (s.0, c));
            let (p_sym, p_cnt) = p.next.get(pi).map_or((u16::MAX, 0), |&(s, c)| (s.0, c));
            let (np, pp) = match n_sym.cmp(&p_sym) {
                std::cmp::Ordering::Less => {
                    ni += 1;
                    (n_cnt as f64 / n_total as f64, 0.0)
                }
                std::cmp::Ordering::Greater => {
                    pi += 1;
                    (0.0, p_cnt as f64 / p_total as f64)
                }
                std::cmp::Ordering::Equal => {
                    ni += 1;
                    pi += 1;
                    (n_cnt as f64 / n_total as f64, p_cnt as f64 / p_total as f64)
                }
            };
            dist += (np - pp).abs();
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PstParams;
    use cluseq_seq::{Alphabet, Sequence, Symbol};

    fn build(text: &str, params: PstParams) -> (Alphabet, Pst) {
        let alphabet = Alphabet::from_chars("abc".chars());
        let seq = Sequence::parse_str(&alphabet, text).unwrap();
        let mut pst = Pst::new(3, params);
        pst.add_sequence(&seq);
        (alphabet, pst)
    }

    fn base() -> PstParams {
        PstParams::default()
            .with_significance(1)
            .without_smoothing()
    }

    #[test]
    fn prune_to_respects_target() {
        let (_, mut pst) = build("abcabcabcaabbcc", base());
        let before = pst.node_count();
        let target = pst.bytes() / 2;
        let removed = pst.prune_to(target);
        assert!(removed > 0);
        assert!(pst.bytes() <= target);
        assert_eq!(pst.node_count(), before - removed);
    }

    #[test]
    fn prune_never_removes_the_root() {
        let (_, mut pst) = build("abcabc", base());
        pst.prune_to(0);
        assert_eq!(pst.node_count(), 1);
        assert!(!pst.is_empty(), "root counts survive pruning");
    }

    #[test]
    fn pruned_tree_still_predicts_via_fallback() {
        let (alphabet, mut pst) = build("ababababab", base());
        let a = alphabet.get("a").unwrap();
        let b = alphabet.get("b").unwrap();
        pst.prune_to(pst.bytes() / 3);
        // Whatever was pruned, prediction falls back to shorter contexts
        // and stays a valid probability.
        let p = pst.raw_predict(&[a, b, a], b);
        assert!((0.0..=1.0).contains(&p));
        assert!(p > 0.4, "the a->b structure survives in short contexts");
    }

    #[test]
    fn longest_label_prunes_deepest_first() {
        let (_, mut pst) = build(
            "abcabcabc",
            base().with_prune_strategy(PruneStrategy::LongestLabel),
        );
        let max_depth_before = pst
            .live_node_ids()
            .map(|id| pst.node(id).depth)
            .max()
            .unwrap();
        // Remove just a little; only the deepest layer should shrink.
        let target = pst.bytes() - pst.node(NodeId::ROOT).bytes();
        pst.prune_to(target);
        let max_depth_after = pst
            .live_node_ids()
            .map(|id| pst.node(id).depth)
            .max()
            .unwrap();
        assert!(max_depth_after <= max_depth_before);
        // All shallower nodes intact: counts at depth 1 unchanged.
        assert_eq!(pst.segment_count(&[Symbol(0)]), 3);
    }

    #[test]
    fn smallest_count_keeps_frequent_contexts() {
        // "ab" dominates; one stray "c" creates rare contexts.
        let (alphabet, mut pst) = build(
            "ababababababababc",
            base().with_prune_strategy(PruneStrategy::SmallestCount),
        );
        let a = alphabet.get("a").unwrap();
        let b = alphabet.get("b").unwrap();
        let c = alphabet.get("c").unwrap();
        pst.prune_to(pst.bytes() * 2 / 3);
        // The frequent "ab" context survives; the singleton "c" leaves died.
        assert!(pst.segment_count(&[a, b]) > 0);
        assert_eq!(pst.segment_count(&[b, c]), 0);
    }

    #[test]
    fn expected_vector_prunes_redundant_leaves_first() {
        // In "aaaa…", every deeper "a…a" context predicts exactly like its
        // parent, so expectedness pruning should remove deep nodes and keep
        // predictions unchanged.
        let (alphabet, mut pst) = build(
            "aaaaaaaaaaaa",
            base().with_prune_strategy(PruneStrategy::ExpectedVector),
        );
        let a = alphabet.get("a").unwrap();
        let before = pst.raw_predict(&[a, a, a], a);
        pst.prune_to(pst.bytes() / 2);
        let after = pst.raw_predict(&[a, a, a], a);
        assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn divergence_from_parent_is_zero_for_identical_distributions() {
        let (alphabet, pst) = build("abababab", base());
        let a = alphabet.get("a").unwrap();
        let b = alphabet.get("b").unwrap();
        // Context "bab" predicts like "ab": both always continue with "a".
        let deep = pst.prediction_node(&[b, a, b]);
        assert!(pst.divergence_from_parent(deep) < 1e-12);
    }

    #[test]
    fn divergence_from_parent_detects_differences() {
        // After "ca" always comes b; after plain "a" it is mixed.
        let (alphabet, pst) = build("aacabaacab", base());
        let c = alphabet.get("c").unwrap();
        let a = alphabet.get("a").unwrap();
        let node = pst.prediction_node(&[c, a]);
        assert_eq!(alphabet.render(&pst.label(node)), "ca");
        assert!(pst.divergence_from_parent(node) > 0.1);
    }

    #[test]
    fn memory_limit_triggers_automatic_pruning() {
        let alphabet = Alphabet::from_chars("abc".chars());
        let limit = 8 * 1024;
        let mut pst = Pst::new(3, base().with_memory_limit(limit));
        // Insert a long pseudo-random-ish sequence to force growth.
        let text: String = (0..20_000)
            .map(|i| match (i * 7 + i / 3) % 5 {
                0 | 3 => 'a',
                1 => 'b',
                _ => 'c',
            })
            .collect();
        pst.add_sequence(&Sequence::parse_str(&alphabet, &text).unwrap());
        assert!(pst.bytes() <= limit, "budget enforced during insertion");
        assert!(pst.node_count() > 1, "pruning keeps useful structure");
    }

    #[test]
    fn priority_orders_by_float_then_keys() {
        let a = Priority(0.0, 5, 0);
        let b = Priority(0.0, 7, 0);
        let c = Priority(1.0, 0, 0);
        assert!(a < b);
        assert!(b < c);
    }
}
