//! Merging one probabilistic suffix tree into another.
//!
//! Supports the merge-based consolidation variant (see
//! `cluseq_core::consolidate`): instead of *dismissing* a covered cluster
//! as the paper does, its statistical evidence can be folded into the
//! covering cluster's model. The merge adds the other tree's occurrence
//! counts and successor counts node-by-node (creating missing contexts up
//! to this tree's own depth cap), which is exactly equivalent to having
//! inserted the other tree's training segments here — except for contexts
//! beyond either tree's cap, which neither tree stored to begin with.
//!
//! Right-extension links are *not* reconstructed for newly created merge
//! nodes (their right-parents may be anywhere in the tree); the merged
//! tree therefore drops to the exact fallback scanning path, like a pruned
//! tree does.

use cluseq_seq::Symbol;

use crate::node::NodeId;
use crate::tree::Pst;

impl Pst {
    /// Folds `other`'s counts into `self`.
    ///
    /// Contexts deeper than `self`'s `max_depth` are truncated (their
    /// counts land on the deepest stored suffix — consistent with how
    /// insertion would have treated them). The significance threshold,
    /// smoothing, and memory budget of `self` stay in force; the memory
    /// budget is enforced after the merge.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ in size.
    pub fn merge(&mut self, other: &Pst) {
        assert_eq!(
            self.alphabet_size(),
            other.alphabet_size(),
            "cannot merge trees over different alphabets"
        );
        // Root bookkeeping first.
        let other_root = other.node(NodeId::ROOT);
        let root_next: Vec<(Symbol, u32)> = other_root.next.clone();
        let other_count = other_root.count;
        self.bump_root(other_count, &root_next);

        // DFS through `other`, mirroring each context path in `self`.
        // Stack holds (other_node, self_node) pairs whose subtrees remain
        // to be merged; `self_node` is the node for the same context.
        let mut stack: Vec<(NodeId, NodeId)> = vec![(NodeId::ROOT, NodeId::ROOT)];
        while let Some((o_id, s_id)) = stack.pop() {
            let children: Vec<(Symbol, NodeId)> = other.node(o_id).children.clone();
            for (sym, o_child) in children {
                let o_node = other.node(o_child);
                if usize::from(o_node.depth) > self.params().max_depth {
                    continue; // deeper than this tree stores
                }
                let s_child = self.ensure_child(s_id, sym);
                self.bump_counts(s_child, o_node.count, &o_node.next);
                stack.push((o_child, s_child));
            }
        }

        // New nodes lack right links; scanning falls back to exact walks.
        self.invalidate_right_links();
        self.enforce_budget();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PstParams;
    use cluseq_seq::{Alphabet, Sequence};

    fn params() -> PstParams {
        PstParams::default()
            .with_significance(1)
            .without_smoothing()
            .with_max_depth(5)
    }

    fn build(texts: &[&str]) -> Pst {
        let alphabet = Alphabet::from_chars("abc".chars());
        let mut pst = Pst::new(3, params());
        for t in texts {
            pst.add_sequence(&Sequence::parse_str(&alphabet, t).unwrap());
        }
        pst
    }

    /// The gold standard: merging B into A equals building one tree from
    /// both training sets.
    #[test]
    fn merge_equals_joint_construction() {
        let mut a = build(&["abcabc", "aabb"]);
        let b = build(&["cbacba", "ccc"]);
        let joint = build(&["abcabc", "aabb", "cbacba", "ccc"]);
        a.merge(&b);

        assert_eq!(a.total_count(), joint.total_count());
        assert_eq!(a.node_count(), joint.node_count());
        let alphabet = Alphabet::from_chars("abc".chars());
        let probe = Sequence::parse_str(&alphabet, "abcba").unwrap();
        let symbols: Vec<Symbol> = probe.iter().collect();
        for i in 0..symbols.len() {
            for s in 0..3u16 {
                assert_eq!(
                    a.raw_predict(&symbols[..i], Symbol(s)),
                    joint.raw_predict(&symbols[..i], Symbol(s)),
                    "context {:?} next {s}",
                    &symbols[..i]
                );
            }
        }
        a.check_invariants();
    }

    #[test]
    fn merge_into_empty_copies_the_other() {
        let mut empty = build(&[]);
        let b = build(&["abcabc"]);
        empty.merge(&b);
        assert_eq!(empty.total_count(), b.total_count());
        assert_eq!(empty.node_count(), b.node_count());
    }

    #[test]
    fn merge_of_empty_is_a_noop() {
        let mut a = build(&["abc"]);
        let before_count = a.total_count();
        let before_nodes = a.node_count();
        a.merge(&build(&[]));
        assert_eq!(a.total_count(), before_count);
        assert_eq!(a.node_count(), before_nodes);
    }

    #[test]
    fn deeper_contexts_are_truncated_to_this_trees_cap() {
        let alphabet = Alphabet::from_chars("abc".chars());
        let mut shallow = Pst::new(3, params().with_max_depth(2));
        shallow.add_sequence(&Sequence::parse_str(&alphabet, "abc").unwrap());
        let deep = build(&["abcabcabc"]); // depth 5
        shallow.merge(&deep);
        shallow.check_invariants();
        for id in shallow.live_node_ids() {
            assert!(shallow.node(id).depth <= 2);
        }
        // Depth-1/2 counts still merged fully.
        let a = alphabet.get("a").unwrap();
        let b = alphabet.get("b").unwrap();
        assert_eq!(
            shallow.segment_count(&[a, b]),
            1 + 3,
            "ab occurs once in shallow's data, three times in deep's"
        );
    }

    #[test]
    fn merge_disables_the_fast_scanner_but_stays_exact() {
        let mut a = build(&["abcabc"]);
        let b = build(&["cbacba"]);
        a.merge(&b);
        assert!(!a.right_links_intact());
        // Scanner fallback still matches the root walk.
        let alphabet = Alphabet::from_chars("abc".chars());
        let probe = Sequence::parse_str(&alphabet, "bacbac").unwrap();
        let symbols: Vec<Symbol> = probe.iter().collect();
        let mut scanner = a.scanner();
        for i in 0..symbols.len() {
            assert_eq!(scanner.prediction_node(), a.prediction_node(&symbols[..i]));
            scanner.advance(symbols[i]);
        }
    }

    #[test]
    fn merge_respects_the_memory_budget() {
        let alphabet = Alphabet::from_chars("abc".chars());
        let mut a = Pst::new(3, params().with_memory_limit(4096));
        a.add_sequence(&Sequence::parse_str(&alphabet, "abcabc").unwrap());
        let b = build(&["cabcabacbacbabcacbabcbacbcaacbbca", "aabbccaabbcc"]);
        a.merge(&b);
        assert!(a.bytes() <= 4096, "budget enforced after merge");
        a.check_invariants();
    }

    #[test]
    #[should_panic(expected = "different alphabets")]
    fn mismatched_alphabets_are_rejected() {
        let mut a = build(&["abc"]);
        let b = Pst::new(7, PstParams::default().with_significance(1));
        a.merge(&b);
    }
}
