//! Fixed-point quantization of a [`CompiledPst`]'s ratio table.
//!
//! The compiled scan is memory-bound: every symbol loads one `f64` ratio
//! and one `u32` goto entry, and for realistic automata the `states ×
//! alphabet × 8`-byte ratio table overflows L2. A [`QuantizedPst`] shrinks
//! the hot table 4× by storing each log-ratio as a signed 16-bit
//! fixed-point value with one **per-automaton scale factor**:
//!
//! ```text
//! scale = max |finite ratio| / 32767
//! q[u][s] = round(ratio[u][s] / scale)        (finite entries)
//! q[u][s] = QVOID                             (ratio = -∞, smoothing off)
//! ```
//!
//! The X/Y/Z dynamic program then runs entirely in `i64` integer
//! arithmetic (sums of `i16` steps cannot overflow for any realistic
//! sequence length), and only the final best chain value is mapped back to
//! log space by a single `q as f64 * scale` multiply. Integer accumulation
//! makes the kernel **byte-stable by construction**: the same automaton
//! and sequence produce the same similarity bits on every run, thread
//! count, and evaluation order — which is what lets quantized verdicts
//! live in the incremental `SimilarityCache` without weakening its column
//! invariant.
//!
//! # Error bound
//!
//! Each finite table entry is off by at most half a quantization step:
//! `|q·scale − ratio| ≤ scale/2` (round-to-nearest). A segment sum over
//! `k ≤ L` positions is therefore off by at most `k · scale/2 ≤ L ·
//! scale/2`, and taking the max over segments is 1-Lipschitz in the
//! segment sums, so for a sequence of length `L` whose exact similarity is
//! finite:
//!
//! ```text
//! |quantized log_sim − exact log_sim| ≤ L · scale / 2   (+ fp slop)
//! ```
//!
//! Void (`-∞`) entries quantize to the [`QVOID`](QuantizedPst::QVOID)
//! sentinel and reproduce the exact kernel's chain-restart semantics
//! exactly, so a sequence scores `-∞` under the quantized kernel iff it
//! does under the exact one — the bound never has to cover an infinity.
//! [`QuantizedPst::error_bound`] returns the bound with one extra
//! quantization step of slack absorbing the `round(x / scale)` division
//! rounding and the final multiply (each ≤ 1 ulp per operation, orders of
//! magnitude below `scale/2`).
//!
//! # Early exit without slack
//!
//! The per-state bounds ([`best_step_q`](QuantizedPst::best_step_q),
//! [`max_step_plus_q`](QuantizedPst::max_step_plus_q)) mirror the compiled
//! kernel's, but in the integer domain — so the mid-scan threshold bound
//! is computed *exactly*, with no floating-point divergence between the
//! bound arithmetic and the DP it bounds. The compiled kernel needs a
//! `1e-6` safety margin for that divergence; the quantized kernel needs
//! none (`i64 → f64` conversion and the scale multiply are monotone, so
//! `bound_q·scale < t` proves `best_q·scale < t`).

use cluseq_seq::Symbol;

use crate::compile::CompiledPst;

/// A [`CompiledPst`] with its ratio table quantized to `i16` fixed point.
///
/// Holds its own copy of the goto table so a batch scan touches exactly
/// two dense arrays (6 bytes per (state, symbol) entry instead of 12) —
/// the structure-of-arrays layout the batched drivers stride over. See the
/// [module docs](self) for the quantization scheme and error bound.
#[derive(Debug, Clone)]
pub struct QuantizedPst {
    alphabet: usize,
    /// `states × alphabet`, row-major; same layout as the source table.
    goto_table: Vec<u32>,
    /// `states × alphabet`, row-major: `round(ratio / scale)`, or
    /// [`QVOID`](Self::QVOID) for a `-∞` ratio.
    qratio: Vec<i16>,
    /// The per-automaton quantization step (log-ratio units per count).
    scale: f64,
    /// Per-state `max_s qratio[state][s]` over finite entries, widened to
    /// `i64` for bound arithmetic; [`QVOID_STEP`](Self::QVOID_STEP) when
    /// every entry of the row is void.
    best_step_q: Vec<i64>,
    /// `max(0, max over all states of best_step_q)`.
    max_step_plus_q: i64,
}

impl QuantizedPst {
    /// The start state: the empty context (same state space as the source
    /// automaton).
    pub const START: u32 = 0;

    /// Sentinel for a `-∞` ratio entry (a raw model probability of 0 with
    /// smoothing off). Finite entries use the symmetric range
    /// `[-32767, 32767]`.
    pub const QVOID: i16 = i16::MIN;

    /// Sentinel for a state whose every ratio entry is void. Far enough
    /// below any reachable chain value that bound arithmetic treats it as
    /// `-∞` without risking `i64` overflow.
    pub const QVOID_STEP: i64 = i64::MIN / 4;

    /// Largest magnitude of a finite quantized entry.
    const Q_MAX: f64 = i16::MAX as f64;

    /// Quantizes a compiled automaton's ratio table.
    ///
    /// Deterministic: the scale is a pure function of the table, each
    /// entry rounds to nearest, and no accumulation order is involved —
    /// the same `CompiledPst` always yields byte-identical tables.
    pub fn from_compiled(compiled: &CompiledPst) -> Self {
        let states = compiled.state_count();
        let n = compiled.alphabet_size();

        let mut max_abs = 0.0f64;
        for u in 0..states {
            for s in 0..n {
                let (x, _) = compiled.step(u as u32, Symbol(s as u16));
                if x.is_finite() {
                    max_abs = max_abs.max(x.abs());
                }
            }
        }
        // An all-zero (or all-void) table quantizes exactly with any
        // positive scale; 1.0 keeps the error bound meaningful.
        let scale = if max_abs > 0.0 {
            max_abs / Self::Q_MAX
        } else {
            1.0
        };

        let mut goto_table = vec![0u32; states * n];
        let mut qratio = vec![0i16; states * n];
        let mut best_step_q = vec![Self::QVOID_STEP; states];
        for (u, best_q) in best_step_q.iter_mut().enumerate() {
            for s in 0..n {
                let (x, next) = compiled.step(u as u32, Symbol(s as u16));
                let i = u * n + s;
                goto_table[i] = next;
                qratio[i] = if x.is_finite() {
                    // The clamp guards the `x == ±max_abs` edge where the
                    // division can land a hair above Q_MAX in fp.
                    let q = (x / scale).round().clamp(-Self::Q_MAX, Self::Q_MAX);
                    let q = q as i16;
                    if i64::from(q) > *best_q {
                        *best_q = i64::from(q);
                    }
                    q
                } else {
                    debug_assert!(x == f64::NEG_INFINITY, "ratios are finite or -inf");
                    Self::QVOID
                };
            }
        }
        let max_step_plus_q = best_step_q.iter().fold(0i64, |a, &b| a.max(b));

        Self {
            alphabet: n,
            goto_table,
            qratio,
            scale,
            best_step_q,
            max_step_plus_q,
        }
    }

    /// Number of automaton states (identical to the source automaton).
    pub fn state_count(&self) -> usize {
        self.best_step_q.len()
    }

    /// Alphabet size shared with the source automaton.
    pub fn alphabet_size(&self) -> usize {
        self.alphabet
    }

    /// The quantization step: log-ratio units per integer count.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The DP step from `state` on `sym`: the quantized ratio (or
    /// [`QVOID`](Self::QVOID)) and the successor state.
    #[inline(always)]
    pub fn step(&self, state: u32, sym: Symbol) -> (i16, u32) {
        let i = state as usize * self.alphabet + sym.index();
        (self.qratio[i], self.goto_table[i])
    }

    /// Integer analogue of [`CompiledPst::best_step`]: the largest finite
    /// quantized step from `state`, or [`QVOID_STEP`](Self::QVOID_STEP).
    #[inline]
    pub fn best_step_q(&self, state: u32) -> i64 {
        self.best_step_q[state as usize]
    }

    /// Integer analogue of [`CompiledPst::max_step_plus`]: no future
    /// position can add more than this to a chain. Always `≥ 0`.
    #[inline]
    pub fn max_step_plus_q(&self) -> i64 {
        self.max_step_plus_q
    }

    /// Maps an integer chain value back to log space — the only
    /// floating-point operation of a quantized scan.
    #[inline(always)]
    pub fn dequantize(&self, q: i64) -> f64 {
        q as f64 * self.scale
    }

    /// The documented worst-case deviation of a quantized similarity from
    /// the exact one for a sequence of `len` symbols (both finite; see the
    /// [module docs](self) for the derivation). One extra quantization
    /// step absorbs the sub-ulp floating-point slop of the quantization
    /// divisions and the final dequantize multiply.
    pub fn error_bound(&self, len: usize) -> f64 {
        self.scale * (len as f64 / 2.0 + 1.0)
    }

    /// Heap footprint of the tables, for budget accounting.
    pub fn table_bytes(&self) -> usize {
        self.goto_table.len() * std::mem::size_of::<u32>()
            + self.qratio.len() * std::mem::size_of::<i16>()
            + self.best_step_q.len() * std::mem::size_of::<i64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PstParams;
    use crate::tree::Pst;
    use cluseq_seq::{Alphabet, BackgroundModel, Sequence};

    fn compiled(text: &str, smoothing: bool) -> CompiledPst {
        let alphabet = Alphabet::from_chars("abc".chars());
        let seq = Sequence::parse_str(&alphabet, text).unwrap();
        let mut params = PstParams::default().with_significance(2).with_max_depth(4);
        if !smoothing {
            params = params.without_smoothing();
        }
        let mut pst = Pst::new(3, params);
        pst.add_sequence(&seq);
        CompiledPst::compile(&pst, &BackgroundModel::uniform(3))
    }

    #[test]
    fn every_finite_entry_is_within_half_a_step() {
        let c = compiled("abcabcaabbccabcbacbca", true);
        let q = QuantizedPst::from_compiled(&c);
        assert_eq!(q.state_count(), c.state_count());
        assert_eq!(q.alphabet_size(), c.alphabet_size());
        assert!(q.scale() > 0.0);
        for u in 0..c.state_count() as u32 {
            for s in 0..3u16 {
                let (x, next) = c.step(u, Symbol(s));
                let (qx, qnext) = q.step(u, Symbol(s));
                assert_eq!(next, qnext, "goto must be copied verbatim");
                assert_ne!(qx, QuantizedPst::QVOID, "smoothed table has no voids");
                let err = (f64::from(qx) * q.scale() - x).abs();
                assert!(
                    err <= q.scale() * 0.5 + 1e-12,
                    "state {u} sym {s}: err {err} vs scale {}",
                    q.scale()
                );
            }
        }
    }

    #[test]
    fn void_entries_map_to_the_sentinel() {
        let c = compiled("ababababab", false);
        let q = QuantizedPst::from_compiled(&c);
        let mut voids = 0;
        for u in 0..c.state_count() as u32 {
            for s in 0..3u16 {
                let (x, _) = c.step(u, Symbol(s));
                let (qx, _) = q.step(u, Symbol(s));
                assert_eq!(x == f64::NEG_INFINITY, qx == QuantizedPst::QVOID);
                if qx == QuantizedPst::QVOID {
                    voids += 1;
                }
            }
        }
        assert!(voids > 0, "an unsmoothed ab-only tree must have void rows");
    }

    #[test]
    fn integer_bounds_dominate_every_step() {
        let c = compiled("abcabcaabbccabcbacbca", true);
        let q = QuantizedPst::from_compiled(&c);
        assert!(q.max_step_plus_q() >= 0);
        for u in 0..q.state_count() as u32 {
            for s in 0..3u16 {
                let (qx, _) = q.step(u, Symbol(s));
                if qx != QuantizedPst::QVOID {
                    assert!(i64::from(qx) <= q.best_step_q(u));
                    assert!(i64::from(qx) <= q.max_step_plus_q());
                }
            }
        }
    }

    #[test]
    fn quantization_is_deterministic() {
        let c = compiled("abcabcaabbccabcbacbca", true);
        let a = QuantizedPst::from_compiled(&c);
        let b = QuantizedPst::from_compiled(&c);
        assert_eq!(a.scale().to_bits(), b.scale().to_bits());
        assert_eq!(a.qratio, b.qratio);
        assert_eq!(a.goto_table, b.goto_table);
    }

    #[test]
    fn error_bound_grows_linearly_and_tables_shrink() {
        let c = compiled("abcabcaabbccabcbacbca", true);
        let q = QuantizedPst::from_compiled(&c);
        assert!(q.error_bound(200) > q.error_bound(10));
        assert!(q.error_bound(0) > 0.0, "the slack term keeps it positive");
        // The i16 table is the point: the quantized footprint must beat
        // the f64 one.
        assert!(q.table_bytes() < c.table_bytes());
    }
}
