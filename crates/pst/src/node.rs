//! Arena-backed PST nodes.

use serde::{Deserialize, Serialize};

use cluseq_seq::Symbol;

/// Index of a node within a [`crate::Pst`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The root node is always slot 0 and is never pruned.
    pub const ROOT: NodeId = NodeId(0);

    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// One PST node: the context (node label) is implicit in the path from the
/// root; the node stores its occurrence count and next-symbol counts.
///
/// Both the child table and the next-symbol counts are sparse sorted vectors
/// — at paper scale (alphabets of 20–200 symbols, millions of nodes) a dense
/// per-node vector would dominate memory, and most nodes see only a handful
/// of distinct successors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// `C(σ′)`: occurrences of this node's label in the cluster. For the
    /// root this is the cluster size (sum of inserted lengths).
    pub count: u64,
    /// Children, sorted by edge symbol. The child under symbol `x`
    /// represents the context `x · σ′` (one symbol further into the past).
    pub children: Vec<(Symbol, NodeId)>,
    /// Next-symbol counts, sorted by symbol: `next[s]` is the number of
    /// occurrences of `σ′` immediately followed by `s`.
    pub next: Vec<(Symbol, u32)>,
    /// Auxiliary *right-extension* links, sorted by symbol: the entry for
    /// `s` points to the node whose label is `σ′·s` (this context with `s`
    /// appended on the recent side). These are the "auxiliary links" the
    /// paper alludes to for the O(l) similarity scan: they let the
    /// prediction node be carried incrementally across positions instead
    /// of re-walking from the root. Note this is *not* the child table —
    /// children prepend an older symbol.
    pub right: Vec<(Symbol, NodeId)>,
    /// The inverse of a `right` entry: `(w, s)` such that this node's
    /// label is `label(w)·s`. Used to unlink on pruning.
    pub right_parent: Option<(NodeId, Symbol)>,
    /// Context length (root = 0).
    pub depth: u16,
    /// Parent node (root points to itself).
    pub parent: NodeId,
    /// Edge symbol from the parent (unspecified for the root).
    pub edge: Symbol,
    /// Dead nodes are recycled through the free list.
    pub live: bool,
}

impl Node {
    pub(crate) fn new(parent: NodeId, edge: Symbol, depth: u16) -> Self {
        Self {
            count: 0,
            children: Vec::new(),
            next: Vec::new(),
            right: Vec::new(),
            right_parent: None,
            depth,
            parent,
            edge,
            live: true,
        }
    }

    /// Looks up the child reached by `symbol`.
    #[inline]
    pub fn child(&self, symbol: Symbol) -> Option<NodeId> {
        match self.children.binary_search_by_key(&symbol, |&(s, _)| s) {
            Ok(i) => Some(self.children[i].1),
            Err(_) => None,
        }
    }

    pub(crate) fn insert_child(&mut self, symbol: Symbol, id: NodeId) {
        match self.children.binary_search_by_key(&symbol, |&(s, _)| s) {
            Ok(i) => self.children[i].1 = id,
            Err(i) => self.children.insert(i, (symbol, id)),
        }
    }

    pub(crate) fn remove_child(&mut self, symbol: Symbol) {
        if let Ok(i) = self.children.binary_search_by_key(&symbol, |&(s, _)| s) {
            self.children.remove(i);
        }
    }

    /// The raw next-symbol count for `symbol`.
    #[inline]
    pub fn next_count(&self, symbol: Symbol) -> u32 {
        match self.next.binary_search_by_key(&symbol, |&(s, _)| s) {
            Ok(i) => self.next[i].1,
            Err(_) => 0,
        }
    }

    /// Increments the next-symbol count; returns `true` when a new entry was
    /// created (so the tree can keep its byte estimate current).
    pub(crate) fn bump_next(&mut self, symbol: Symbol) -> bool {
        match self.next.binary_search_by_key(&symbol, |&(s, _)| s) {
            Ok(i) => {
                self.next[i].1 += 1;
                false
            }
            Err(i) => {
                self.next.insert(i, (symbol, 1));
                true
            }
        }
    }

    /// Total count of observed successors (occurrences of the label that
    /// are followed by *some* symbol; occurrences at the very end of a
    /// segment have no successor and are excluded).
    #[inline]
    pub fn next_total(&self) -> u64 {
        self.next.iter().map(|&(_, c)| c as u64).sum()
    }

    /// The empirical conditional probability `P(symbol | label)`, normalized
    /// over observed successors. Returns `None` when the node has no
    /// observed successors at all.
    pub fn raw_prob(&self, symbol: Symbol) -> Option<f64> {
        let total = self.next_total();
        if total == 0 {
            None
        } else {
            Some(self.next_count(symbol) as f64 / total as f64)
        }
    }

    /// The right-extension of this context by `symbol`, if linked.
    #[inline]
    pub fn right_child(&self, symbol: Symbol) -> Option<NodeId> {
        match self.right.binary_search_by_key(&symbol, |&(s, _)| s) {
            Ok(i) => Some(self.right[i].1),
            Err(_) => None,
        }
    }

    /// Inserts a right-extension link; returns whether it was new.
    pub(crate) fn insert_right(&mut self, symbol: Symbol, id: NodeId) -> bool {
        match self.right.binary_search_by_key(&symbol, |&(s, _)| s) {
            Ok(i) => {
                debug_assert_eq!(self.right[i].1, id, "conflicting right link");
                false
            }
            Err(i) => {
                self.right.insert(i, (symbol, id));
                true
            }
        }
    }

    pub(crate) fn remove_right(&mut self, symbol: Symbol) {
        if let Ok(i) = self.right.binary_search_by_key(&symbol, |&(s, _)| s) {
            self.right.remove(i);
        }
    }

    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Estimated footprint of this node, in bytes, used for the paper's
    /// §5.1 per-tree memory budget. Computed from table *lengths* (not
    /// capacities) so the tree can maintain the estimate incrementally and
    /// exactly; actual heap usage is within a small constant factor.
    pub fn bytes(&self) -> usize {
        std::mem::size_of::<Node>()
            + self.children.len() * std::mem::size_of::<(Symbol, NodeId)>()
            + self.next.len() * std::mem::size_of::<(Symbol, u32)>()
            + self.right.len() * std::mem::size_of::<(Symbol, NodeId)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u16) -> Symbol {
        Symbol(i)
    }

    #[test]
    fn child_table_stays_sorted() {
        let mut n = Node::new(NodeId::ROOT, sym(0), 1);
        n.insert_child(sym(5), NodeId(1));
        n.insert_child(sym(2), NodeId(2));
        n.insert_child(sym(9), NodeId(3));
        let syms: Vec<u16> = n.children.iter().map(|&(s, _)| s.0).collect();
        assert_eq!(syms, vec![2, 5, 9]);
        assert_eq!(n.child(sym(5)), Some(NodeId(1)));
        assert_eq!(n.child(sym(7)), None);
    }

    #[test]
    fn insert_child_overwrites_existing_symbol() {
        let mut n = Node::new(NodeId::ROOT, sym(0), 1);
        n.insert_child(sym(1), NodeId(1));
        n.insert_child(sym(1), NodeId(2));
        assert_eq!(n.children.len(), 1);
        assert_eq!(n.child(sym(1)), Some(NodeId(2)));
    }

    #[test]
    fn remove_child_removes() {
        let mut n = Node::new(NodeId::ROOT, sym(0), 1);
        n.insert_child(sym(1), NodeId(1));
        n.remove_child(sym(1));
        assert!(n.is_leaf());
        // removing a missing child is a no-op
        n.remove_child(sym(2));
    }

    #[test]
    fn next_counts_accumulate() {
        let mut n = Node::new(NodeId::ROOT, sym(0), 0);
        n.bump_next(sym(1));
        n.bump_next(sym(1));
        n.bump_next(sym(0));
        assert_eq!(n.next_count(sym(1)), 2);
        assert_eq!(n.next_count(sym(0)), 1);
        assert_eq!(n.next_count(sym(3)), 0);
        assert_eq!(n.next_total(), 3);
    }

    #[test]
    fn raw_prob_normalizes_over_successors() {
        let mut n = Node::new(NodeId::ROOT, sym(0), 0);
        n.bump_next(sym(0));
        n.bump_next(sym(1));
        n.bump_next(sym(1));
        n.bump_next(sym(1));
        assert!((n.raw_prob(sym(1)).unwrap() - 0.75).abs() < 1e-12);
        assert!((n.raw_prob(sym(0)).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(n.raw_prob(sym(2)).unwrap(), 0.0);
    }

    #[test]
    fn raw_prob_is_none_without_successors() {
        let n = Node::new(NodeId::ROOT, sym(0), 0);
        assert!(n.raw_prob(sym(0)).is_none());
    }

    #[test]
    fn bytes_grows_with_tables() {
        let empty = Node::new(NodeId::ROOT, sym(0), 0).bytes();
        let mut n = Node::new(NodeId::ROOT, sym(0), 0);
        for i in 0..16 {
            n.bump_next(sym(i));
        }
        assert!(n.bytes() > empty);
    }
}
