//! Incremental context scanning — the paper's "auxiliary links" O(l)
//! similarity optimization (§4.3: *"with the help of some additional
//! structure (e.g., auxiliary links), the computational complexity could
//! be reduced to O(l)"* — mentioned but not described; this is our
//! realization).
//!
//! The naive similarity scan re-locates the prediction node of
//! `s₁…sᵢ₋₁` from the root for every position `i`, costing O(L) each.
//! A [`ContextScanner`] instead carries the prediction node across
//! positions: extending the context by one symbol `s` moves to the node
//! for `(longest significant suffix)·s`, found by walking *up* the parent
//! chain (each parent drops the oldest context symbol) and following a
//! right-extension link. The node depth increases by at most one per
//! position and each parent step decreases it by one, so the total work
//! over a scan is O(l) amortized.
//!
//! **Exactness.** The incremental walk provably finds the same prediction
//! node as the root walk, *provided* the right-link structure is complete
//! (see the correctness note on [`ContextScanner::advance`]). Pruning can
//! remove a node that others extend from; the tree records this
//! ([`Pst::right_links_intact`]) and the scanner transparently falls back
//! to the exact per-position root walk, so results are identical either
//! way — only speed differs.

use cluseq_seq::Symbol;

use crate::compile::CompiledPst;
use crate::node::NodeId;
use crate::tree::Pst;

/// An incremental prediction-node cursor over a [`Pst`].
#[derive(Debug, Clone)]
pub struct ContextScanner<'a> {
    pst: &'a Pst,
    /// Current prediction node (longest significant suffix of the context
    /// consumed so far).
    node: NodeId,
    /// Whether the incremental fast path is usable.
    fast: bool,
    /// Fallback scratch buffer (only maintained when `fast` is false).
    /// Holds a suffix of the consumed symbols whose last `max_depth`
    /// entries are the context window; it is compacted in place only once
    /// it reaches `2 × max_depth`, so the per-symbol cost is one push
    /// (amortized) instead of shifting the whole window every call.
    context: Vec<Symbol>,
}

impl Pst {
    /// Starts a scanner at the empty context.
    pub fn scanner(&self) -> ContextScanner<'_> {
        self.scanner_with_scratch(Vec::new())
    }

    /// Starts a scanner at the empty context, reusing `scratch` as the
    /// fallback buffer so tight scan loops can recycle one allocation
    /// across many scanners (recover it with
    /// [`ContextScanner::into_scratch`]). The buffer is cleared; its
    /// capacity is kept.
    pub fn scanner_with_scratch(&self, mut scratch: Vec<Symbol>) -> ContextScanner<'_> {
        scratch.clear();
        ContextScanner {
            pst: self,
            node: NodeId::ROOT,
            fast: self.right_links_intact(),
            context: scratch,
        }
    }
}

impl<'a> ContextScanner<'a> {
    /// Whether the O(l) incremental path is active (false after pruning).
    pub fn is_fast(&self) -> bool {
        self.fast
    }

    /// The current prediction node.
    pub fn prediction_node(&self) -> NodeId {
        self.node
    }

    /// Resets to the empty context (start of a new sequence).
    pub fn reset(&mut self) {
        self.node = NodeId::ROOT;
        self.context.clear();
    }

    /// Consumes the scanner, returning its scratch buffer for reuse with
    /// [`Pst::scanner_with_scratch`].
    pub fn into_scratch(self) -> Vec<Symbol> {
        self.context
    }

    /// Returns the (smoothed) conditional probability of `next` given the
    /// context consumed so far, then extends the context by `next`.
    ///
    /// Equivalent to `pst.predict(&consumed, next)` followed by pushing
    /// `next` onto the context.
    pub fn predict_and_advance(&mut self, next: Symbol) -> f64 {
        let raw = self
            .pst
            .node(self.node)
            .raw_prob(next)
            .unwrap_or(1.0 / self.pst.alphabet_size() as f64);
        self.advance(next);
        self.pst.smooth(raw)
    }

    /// Extends the context by one symbol, updating the prediction node.
    ///
    /// Correctness of the fast path: let `u` be the prediction node of the
    /// old context (its longest significant suffix). Any significant
    /// suffix of the new context has the form `w·s` where `w` is a
    /// significant suffix of the old context — and every suffix of a
    /// significant segment is itself significant (occurrence counts are
    /// monotone under suffix), so `w` lies on `u`'s parent chain
    /// (including `u` itself and the root). Walking that chain from the
    /// deepest candidate down and taking the first significant
    /// right-extension therefore yields exactly the *longest* significant
    /// suffix of the new context — the same node the root walk finds.
    pub fn advance(&mut self, s: Symbol) {
        if self.fast {
            let mut w = self.node;
            loop {
                if let Some(v) = self.pst.node(w).right_child(s) {
                    if self.pst.is_significant(v) {
                        self.node = v;
                        return;
                    }
                }
                if w == NodeId::ROOT {
                    self.node = NodeId::ROOT;
                    return;
                }
                w = self.pst.node(w).parent;
            }
        } else {
            // Exact fallback: keep a bounded scratch buffer and re-walk the
            // last `max_depth` symbols. Compacting only when the buffer hits
            // twice the window size makes the maintenance O(1) amortized —
            // the old `drain(..excess)` shifted every retained symbol on
            // every call.
            let depth = self.pst.params().max_depth;
            self.context.push(s);
            if self.context.len() >= depth.saturating_mul(2).max(depth + 1) {
                let keep_from = self.context.len() - depth;
                self.context.copy_within(keep_from.., 0);
                self.context.truncate(depth);
            }
            let window_start = self.context.len().saturating_sub(depth);
            self.node = self.pst.prediction_node(&self.context[window_start..]);
        }
    }
}

/// A multi-lane automaton cursor over one [`CompiledPst`] — the state
/// carrier of the batched scan kernel.
///
/// Scanning one sequence at a time streams the goto and ratio tables once
/// per sequence; for automata larger than L2 every position is a cache
/// miss and the scan is latency-bound on dependent loads (the next index
/// depends on the previous goto). A `BatchScanner` holds one automaton
/// state per *lane* (one lane per in-flight sequence) so a driver can
/// interleave N sequences position by position: the N table loads per
/// position are independent of each other, giving the memory system N
/// overlapping misses instead of a serial chain, and hot table rows are
/// shared across lanes while they are still resident.
///
/// The scanner only carries states — the similarity DP registers (`y`,
/// `best`, segment tracking) stay with the caller, which is what keeps a
/// batched scan's per-lane operation sequence *identical* to the
/// single-sequence scan and therefore bit-identical in its results.
#[derive(Debug, Clone)]
pub struct BatchScanner<'a> {
    tables: &'a CompiledPst,
    /// One automaton state per lane.
    states: Vec<u32>,
}

impl<'a> BatchScanner<'a> {
    /// A scanner with `lanes` lanes, all starting at the empty context.
    pub fn new(tables: &'a CompiledPst, lanes: usize) -> Self {
        Self {
            tables,
            states: vec![CompiledPst::START; lanes],
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.states.len()
    }

    /// The automaton the lanes run against.
    pub fn tables(&self) -> &'a CompiledPst {
        self.tables
    }

    /// Advances `lane` by one symbol, returning the lane's ratio-table
    /// step (the DP's `ln Xᵢ`). Identical to [`CompiledPst::step`] on the
    /// lane's state — one lane of a batch scan performs exactly the
    /// single-sequence scan's operations.
    #[inline(always)]
    pub fn step(&mut self, lane: usize, sym: Symbol) -> f64 {
        let (x, next) = self.tables.step(self.states[lane], sym);
        self.states[lane] = next;
        x
    }

    /// The current automaton state of `lane` (for bound computations).
    #[inline]
    pub fn state(&self, lane: usize) -> u32 {
        self.states[lane]
    }

    /// `best_step` of the lane's current state — the early-exit bound
    /// ingredient, looked up without disturbing the lane.
    #[inline]
    pub fn best_step(&self, lane: usize) -> f64 {
        self.tables.best_step(self.states[lane])
    }

    /// Resets every lane to the start state (reuse across batches).
    pub fn reset(&mut self) {
        self.states.fill(CompiledPst::START);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PstParams;
    use cluseq_seq::{Alphabet, Sequence};

    fn build(text: &str, c: u64) -> (Alphabet, Pst) {
        let alphabet = Alphabet::from_chars("abc".chars());
        let seq = Sequence::parse_str(&alphabet, text).unwrap();
        let mut pst = Pst::new(
            3,
            PstParams::default()
                .with_significance(c)
                .with_max_depth(5)
                .without_smoothing(),
        );
        pst.add_sequence(&seq);
        (alphabet, pst)
    }

    /// The scanner must visit exactly the prediction nodes the root walk
    /// finds, for every prefix of every probe.
    fn assert_scanner_matches_walk(pst: &Pst, probe: &[Symbol]) {
        let mut scanner = pst.scanner();
        for i in 0..probe.len() {
            let walk = pst.prediction_node(&probe[..i]);
            assert_eq!(
                scanner.prediction_node(),
                walk,
                "position {i}: scanner at {:?}, walk at {:?} (label {:?})",
                scanner.prediction_node(),
                walk,
                pst.label(walk),
            );
            scanner.advance(probe[i]);
        }
    }

    #[test]
    fn scanner_tracks_the_root_walk_on_training_data() {
        let (alphabet, pst) = build("abcabcaabbccabcbacbca", 1);
        assert!(pst.right_links_intact());
        let probe = Sequence::parse_str(&alphabet, "abcabcaabbcc").unwrap();
        let symbols: Vec<Symbol> = probe.iter().collect();
        assert_scanner_matches_walk(&pst, &symbols);
    }

    #[test]
    fn scanner_tracks_the_root_walk_on_unseen_data() {
        let (alphabet, pst) = build("abcabcabcabc", 2);
        let probe = Sequence::parse_str(&alphabet, "ccbbaaabcabc").unwrap();
        let symbols: Vec<Symbol> = probe.iter().collect();
        assert_scanner_matches_walk(&pst, &symbols);
    }

    #[test]
    fn predict_and_advance_equals_pointwise_predict() {
        let (alphabet, pst) = build("abcabcaabbcc", 1);
        let probe = Sequence::parse_str(&alphabet, "cabcab").unwrap();
        let symbols: Vec<Symbol> = probe.iter().collect();
        let mut scanner = pst.scanner();
        for i in 0..symbols.len() {
            let expected = pst.raw_predict(&symbols[..i], symbols[i]);
            let got = scanner.predict_and_advance(symbols[i]);
            assert!(
                (got - expected).abs() < 1e-12,
                "position {i}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn scanner_falls_back_after_pruning_and_stays_exact() {
        let (alphabet, mut pst) = build("abcabcaabbccabacbc", 1);
        pst.prune_to(pst.bytes() / 2);
        let scanner = pst.scanner();
        // Pruning in this tree removes extended-from nodes, so the fast
        // path must be off…
        if !pst.right_links_intact() {
            assert!(!scanner.is_fast());
        }
        // …and either way the scanner matches the root walk.
        let probe = Sequence::parse_str(&alphabet, "abcabacbcabc").unwrap();
        let symbols: Vec<Symbol> = probe.iter().collect();
        assert_scanner_matches_walk(&pst, &symbols);
    }

    #[test]
    fn reset_restarts_at_the_root() {
        let (alphabet, pst) = build("abcabc", 1);
        let probe = Sequence::parse_str(&alphabet, "abc").unwrap();
        let mut scanner = pst.scanner();
        for s in probe.iter() {
            scanner.advance(s);
        }
        assert_ne!(scanner.prediction_node(), NodeId::ROOT);
        scanner.reset();
        assert_eq!(scanner.prediction_node(), NodeId::ROOT);
    }

    #[test]
    fn scratch_reuse_preserves_capacity_and_exactness() {
        let (alphabet, mut pst) = build("abcabcabcabcabc", 1);
        pst.prune_to(pst.bytes() * 2 / 3);
        let probe = Sequence::parse_str(&alphabet, "abcabacbcabc").unwrap();
        let symbols: Vec<Symbol> = probe.iter().collect();

        let mut scanner = pst.scanner();
        for &s in &symbols {
            scanner.advance(s);
        }
        let scratch = scanner.into_scratch();
        let capacity = scratch.capacity();

        // Rebuilding from the recycled scratch starts clean and matches the
        // root walk, without having dropped the old allocation.
        let mut reused = pst.scanner_with_scratch(scratch);
        assert_eq!(reused.prediction_node(), NodeId::ROOT);
        assert!(reused.context.is_empty());
        assert!(reused.context.capacity() >= capacity.min(1));
        for (i, &s) in symbols.iter().enumerate() {
            assert_eq!(reused.prediction_node(), pst.prediction_node(&symbols[..i]));
            reused.advance(s);
        }
    }

    #[test]
    fn batch_scanner_lanes_track_independent_single_scans() {
        use cluseq_seq::BackgroundModel;
        let (alphabet, pst) = build("abcabcaabbccabcbacbca", 1);
        let compiled = CompiledPst::compile(&pst, &BackgroundModel::uniform(3));
        let probes: Vec<Vec<Symbol>> = ["abcabc", "ccbbaa", "bacbca"]
            .iter()
            .map(|t| Sequence::parse_str(&alphabet, t).unwrap().iter().collect())
            .collect();
        let mut batch = BatchScanner::new(&compiled, probes.len());
        assert_eq!(batch.lanes(), probes.len());
        // Interleave lanes position by position; every lane must follow
        // exactly the states and ratios of its own single-sequence scan.
        let mut singles: Vec<u32> = vec![CompiledPst::START; probes.len()];
        for i in 0..probes[0].len() {
            for (lane, probe) in probes.iter().enumerate() {
                let (want_x, want_next) = compiled.step(singles[lane], probe[i]);
                assert_eq!(
                    batch.best_step(lane).to_bits(),
                    compiled.best_step(singles[lane]).to_bits()
                );
                let x = batch.step(lane, probe[i]);
                singles[lane] = want_next;
                assert_eq!(x.to_bits(), want_x.to_bits(), "lane {lane} pos {i}");
                assert_eq!(batch.state(lane), want_next);
            }
        }
        batch.reset();
        for lane in 0..batch.lanes() {
            assert_eq!(batch.state(lane), CompiledPst::START);
        }
        assert!(std::ptr::eq(batch.tables(), &compiled));
    }

    #[test]
    fn fallback_scratch_buffer_is_bounded() {
        let (alphabet, mut pst) = build("abcabcabcabcabc", 1);
        pst.prune_to(pst.bytes() * 2 / 3);
        let mut scanner = pst.scanner();
        let depth = pst.params().max_depth;
        let probe = Sequence::parse_str(&alphabet, "abcabcabcabcabcabcabcabc").unwrap();
        for s in probe.iter() {
            scanner.advance(s);
            // The scratch buffer is allowed to run ahead of the window (that
            // is the amortization), but never past twice its size.
            assert!(scanner.context.len() < depth * 2);
        }
    }
}
