//! The probabilistic suffix tree itself.

use serde::{Deserialize, Serialize};

use cluseq_seq::{Sequence, Symbol};

use crate::model::ConditionalModel;
use crate::node::{Node, NodeId};
use crate::params::PstParams;

/// Per-entry byte cost used in the incremental footprint estimate.
pub(crate) const CHILD_ENTRY_BYTES: usize = std::mem::size_of::<(Symbol, NodeId)>();
pub(crate) const NEXT_ENTRY_BYTES: usize = std::mem::size_of::<(Symbol, u32)>();

/// A probabilistic suffix tree over reversed sequences (paper §3).
///
/// The node reached from the root by reading symbols `x₁, x₂, …, x_d`
/// represents the context `x_d … x₂ x₁` — i.e. each step from the root moves
/// one symbol further into the *past*. Consequently the parent of a node
/// represents the suffix of the node's context with the oldest symbol
/// dropped, which is exactly the fallback the longest-significant-suffix
/// rule needs.
///
/// Counting convention: inserting a segment of length `l` counts **every**
/// sub-segment of length ≤ `max_depth` (all suffixes of the reversed
/// segment, as the paper prescribes), adds `l` to the root count, and
/// records each occurrence's successor in the owning node's next-symbol
/// table. Probability vectors are normalized over *observed successors*
/// (occurrences at the very end of an inserted segment have no successor and
/// are excluded), so each vector sums to 1, which the §5.2 adjustment
/// requires.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pst {
    params: PstParams,
    alphabet_size: usize,
    arena: Vec<Node>,
    free: Vec<NodeId>,
    live_nodes: usize,
    bytes: usize,
    /// Whether the right-extension link structure is still complete.
    /// Pruning a node that other nodes extend from breaks incremental
    /// scanning (see [`crate::scanner`]); scanners then fall back to the
    /// per-position root walk, which is always exact.
    right_links_intact: bool,
}

impl Pst {
    /// Creates an empty tree for an alphabet of `alphabet_size` symbols.
    ///
    /// # Panics
    ///
    /// Panics if `alphabet_size` is 0 or the parameters are invalid
    /// (see [`PstParams::validate`]).
    pub fn new(alphabet_size: usize, params: PstParams) -> Self {
        assert!(alphabet_size > 0, "alphabet must have at least one symbol");
        params.validate(alphabet_size);
        let root = Node::new(NodeId::ROOT, Symbol(0), 0);
        let bytes = root.bytes();
        Self {
            params,
            alphabet_size,
            arena: vec![root],
            free: Vec::new(),
            live_nodes: 1,
            bytes,
            right_links_intact: true,
        }
    }

    /// Reassembles a tree from deserialized parts (all nodes live, ids
    /// dense, root first). Byte and liveness accounting are recomputed.
    pub(crate) fn from_parts(
        alphabet_size: usize,
        params: PstParams,
        nodes: Vec<Node>,
        right_links_intact: bool,
    ) -> Self {
        debug_assert!(!nodes.is_empty());
        let bytes = nodes.iter().map(Node::bytes).sum();
        let live_nodes = nodes.len();
        Self {
            params,
            alphabet_size,
            arena: nodes,
            free: Vec::new(),
            live_nodes,
            bytes,
            right_links_intact,
        }
    }

    /// Builds a tree from a single sequence — the paper's initial cluster
    /// state (*"each new cluster at its initial stage contains only one
    /// sequence and is represented by the probabilistic suffix tree
    /// constructed from the sequence"*).
    pub fn from_sequence(alphabet_size: usize, params: PstParams, seq: &Sequence) -> Self {
        let mut pst = Self::new(alphabet_size, params);
        pst.add_sequence(seq);
        pst
    }

    /// The construction parameters.
    pub fn params(&self) -> &PstParams {
        &self.params
    }

    /// The alphabet size `n`.
    pub fn alphabet_size(&self) -> usize {
        self.alphabet_size
    }

    /// Number of live nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Estimated footprint in bytes (see [`Node::bytes`]).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The root count: total number of symbols inserted (the paper's
    /// "overall size of the sequence cluster").
    pub fn total_count(&self) -> u64 {
        self.arena[NodeId::ROOT.index()].count
    }

    /// Whether nothing has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.total_count() == 0
    }

    /// Read access to a node.
    pub fn node(&self, id: NodeId) -> &Node {
        let n = &self.arena[id.index()];
        debug_assert!(n.live, "accessed a pruned node");
        n
    }

    /// Liveness-tolerant node access: pruning bookkeeping legitimately
    /// inspects nodes that may have just died.
    pub(crate) fn raw_node(&self, id: NodeId) -> &Node {
        &self.arena[id.index()]
    }

    /// Whether `id` is significant (count ≥ `c`). The root is always
    /// treated as significant: it is the prediction fallback of last resort.
    #[inline]
    pub fn is_significant(&self, id: NodeId) -> bool {
        id == NodeId::ROOT || self.arena[id.index()].count >= self.params.significance
    }

    /// Inserts a whole sequence (all its segments up to `max_depth`).
    pub fn add_sequence(&mut self, seq: &Sequence) {
        self.add_segment(seq.symbols());
    }

    /// Inserts a segment: counts every sub-segment of length ≤ `max_depth`
    /// together with its successor symbol, then enforces the memory budget.
    ///
    /// This is the operation the CLUSEQ re-clustering step performs with the
    /// similarity-maximizing segment of each joining sequence (§4.4).
    pub fn add_segment(&mut self, seg: &[Symbol]) {
        let len = seg.len();
        if len == 0 {
            return;
        }
        debug_assert!(
            seg.iter().all(|s| s.index() < self.alphabet_size),
            "segment contains symbols outside the tree's alphabet"
        );

        // Root: count += len; successor table records every position.
        {
            let root = &mut self.arena[NodeId::ROOT.index()];
            root.count += len as u64;
            let mut new_entries = 0usize;
            for &s in seg {
                if root.bump_next(s) {
                    new_entries += 1;
                }
            }
            self.bytes += new_entries * NEXT_ENTRY_BYTES;
        }

        // Every non-empty sub-segment, enumerated by its (exclusive) end.
        // `prev_walk[d-1]` is the node for seg[(end-1)-d .. end-1] from the
        // previous end position: the node for seg[end-d .. end-1], i.e. the
        // current context minus its newest symbol — exactly the
        // right-extension parent needed for the auxiliary O(l) links.
        let max_depth = self.params.max_depth;
        let mut prev_walk: Vec<NodeId> = Vec::with_capacity(max_depth);
        let mut cur_walk: Vec<NodeId> = Vec::with_capacity(max_depth);
        for end in 1..=len {
            let successor = seg.get(end).copied();
            let newest = seg[end - 1];
            let mut node = NodeId::ROOT;
            cur_walk.clear();
            for d in 1..=max_depth.min(end) {
                let sym = seg[end - d];
                node = self.get_or_create_child(node, sym);
                cur_walk.push(node);
                {
                    let n = &mut self.arena[node.index()];
                    n.count += 1;
                    if let Some(s) = successor {
                        if n.bump_next(s) {
                            self.bytes += NEXT_ENTRY_BYTES;
                        }
                    }
                }
                // Link right-parent (context minus newest symbol) -> node.
                if self.arena[node.index()].right_parent.is_none() {
                    let rp = if d == 1 {
                        NodeId::ROOT
                    } else {
                        prev_walk[d - 2]
                    };
                    if self.arena[rp.index()].insert_right(newest, node) {
                        self.bytes += CHILD_ENTRY_BYTES;
                    }
                    self.arena[node.index()].right_parent = Some((rp, newest));
                }
            }
            std::mem::swap(&mut prev_walk, &mut cur_walk);
        }

        self.enforce_budget();
    }

    /// Prunes if the byte estimate exceeds the configured budget.
    pub(crate) fn enforce_budget(&mut self) {
        if let Some(limit) = self.params.memory_limit {
            if self.bytes > limit {
                let target = (limit as f64 * self.params.prune_target_fraction) as usize;
                self.prune_to(target);
            }
        }
    }

    /// Adds `count` root occurrences and successor counts (merge support).
    pub(crate) fn bump_root(&mut self, count: u64, next: &[(Symbol, u32)]) {
        self.bump_counts(NodeId::ROOT, count, next);
    }

    /// Adds occurrence and successor counts to an existing node.
    pub(crate) fn bump_counts(&mut self, id: NodeId, count: u64, next: &[(Symbol, u32)]) {
        let node = &mut self.arena[id.index()];
        node.count += count;
        let mut new_entries = 0usize;
        for &(sym, c) in next {
            match node.next.binary_search_by_key(&sym, |&(s, _)| s) {
                Ok(i) => node.next[i].1 += c,
                Err(i) => {
                    node.next.insert(i, (sym, c));
                    new_entries += 1;
                }
            }
        }
        self.bytes += new_entries * NEXT_ENTRY_BYTES;
    }

    /// Looks up or creates the child of `parent` under `sym` (merge
    /// support; counts are the caller's responsibility).
    pub(crate) fn ensure_child(&mut self, parent: NodeId, sym: Symbol) -> NodeId {
        self.get_or_create_child(parent, sym)
    }

    /// Marks the right-extension link structure incomplete (scanners fall
    /// back to exact per-position walks).
    pub(crate) fn invalidate_right_links(&mut self) {
        self.right_links_intact = false;
    }

    fn get_or_create_child(&mut self, parent: NodeId, sym: Symbol) -> NodeId {
        if let Some(child) = self.arena[parent.index()].child(sym) {
            return child;
        }
        let depth = self.arena[parent.index()].depth + 1;
        let node = Node::new(parent, sym, depth);
        self.bytes += node.bytes() + CHILD_ENTRY_BYTES;
        let id = match self.free.pop() {
            Some(id) => {
                self.arena[id.index()] = node;
                id
            }
            None => {
                let id = NodeId(u32::try_from(self.arena.len()).expect("PST exceeds u32 nodes"));
                self.arena.push(node);
                id
            }
        };
        self.arena[parent.index()].insert_child(sym, id);
        self.live_nodes += 1;
        id
    }

    pub(crate) fn release_node(&mut self, id: NodeId) {
        debug_assert!(id != NodeId::ROOT, "the root is never pruned");
        let (parent, edge, node_bytes, right_parent, right) = {
            let n = &self.arena[id.index()];
            debug_assert!(n.live && n.is_leaf(), "only live leaves are released");
            (n.parent, n.edge, n.bytes(), n.right_parent, n.right.clone())
        };
        self.arena[parent.index()].remove_child(edge);
        // Unlink from the right-extension structure. Losing a node that
        // others extend from makes live nodes unreachable for incremental
        // scanning; record that so scanners fall back to exact walks.
        if let Some((rp, sym)) = right_parent {
            if self.arena[rp.index()].live {
                self.arena[rp.index()].remove_right(sym);
                self.bytes -= CHILD_ENTRY_BYTES;
            }
        }
        if !right.is_empty() {
            self.right_links_intact = false;
            for &(_, v) in &right {
                if self.arena[v.index()].live {
                    self.arena[v.index()].right_parent = None;
                }
            }
        }
        let n = &mut self.arena[id.index()];
        n.live = false;
        n.children = Vec::new();
        n.next = Vec::new();
        n.right = Vec::new();
        n.right_parent = None;
        self.bytes -= node_bytes + CHILD_ENTRY_BYTES;
        self.live_nodes -= 1;
        self.free.push(id);
    }

    /// Whether the incremental right-extension links still cover the whole
    /// tree (true until a node with outgoing right links is pruned).
    pub fn right_links_intact(&self) -> bool {
        self.right_links_intact
    }

    /// Locates the **prediction node** of `context` (paper §3): the node
    /// whose label is the longest significant suffix of `context`, found by
    /// walking from the root through `context` in reverse and stopping
    /// before any insignificant or missing node (and at `max_depth`).
    ///
    /// ```
    /// use cluseq_pst::{Pst, PstParams};
    /// use cluseq_seq::{Alphabet, Sequence};
    ///
    /// let alphabet = Alphabet::from_chars("ab".chars());
    /// let train = Sequence::parse_str(&alphabet, "bababb").unwrap();
    /// // "ba" occurs twice, "aba" once: with c = 2 the context "aba"
    /// // falls back to its longest significant suffix "ba".
    /// let pst = Pst::from_sequence(2, PstParams::default().with_significance(2), &train);
    /// let a = alphabet.get("a").unwrap();
    /// let b = alphabet.get("b").unwrap();
    /// let node = pst.prediction_node(&[a, b, a]);
    /// assert_eq!(pst.label(node), vec![b, a]);
    /// ```
    pub fn prediction_node(&self, context: &[Symbol]) -> NodeId {
        let len = context.len();
        let mut node = NodeId::ROOT;
        for d in 1..=self.params.max_depth.min(len) {
            let sym = context[len - d];
            match self.arena[node.index()].child(sym) {
                Some(child) if self.is_significant(child) => node = child,
                _ => break,
            }
        }
        node
    }

    /// The occurrence count `C(segment)`, or 0 if the segment was never
    /// inserted. Only segments of length ≤ `max_depth` are represented;
    /// longer queries return 0.
    pub fn segment_count(&self, segment: &[Symbol]) -> u64 {
        if segment.is_empty() {
            return self.total_count();
        }
        if segment.len() > self.params.max_depth {
            return 0;
        }
        let mut node = NodeId::ROOT;
        for &sym in segment.iter().rev() {
            match self.arena[node.index()].child(sym) {
                Some(child) => node = child,
                None => return 0,
            }
        }
        self.arena[node.index()].count
    }

    /// The raw (unsmoothed) conditional probability `P(next | context)`
    /// from the prediction node, normalized over observed successors.
    /// Returns the uniform `1/n` when the prediction node has never seen a
    /// successor (an empty tree).
    pub fn raw_predict(&self, context: &[Symbol], next: Symbol) -> f64 {
        let node = self.prediction_node(context);
        self.arena[node.index()]
            .raw_prob(next)
            .unwrap_or(1.0 / self.alphabet_size as f64)
    }

    /// Applies the paper's §5.2 adjustment to a raw probability:
    /// `P̂ = (1 − n·p_min)·P + p_min`.
    #[inline]
    pub fn smooth(&self, raw: f64) -> f64 {
        match self.params.smoothing {
            Some(p_min) => (1.0 - self.alphabet_size as f64 * p_min) * raw + p_min,
            None => raw,
        }
    }

    /// Iterates over the ids of all live nodes (root included).
    pub fn live_node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.arena
            .iter()
            .enumerate()
            .filter(|(_, n)| n.live)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Reconstructs a node's label (its context, oldest symbol first) by
    /// walking parent links. Intended for diagnostics and tests.
    pub fn label(&self, id: NodeId) -> Vec<Symbol> {
        let mut out = Vec::new();
        let mut cur = id;
        while cur != NodeId::ROOT {
            let n = &self.arena[cur.index()];
            out.push(n.edge);
            cur = n.parent;
        }
        // Walking up yields edge symbols newest-context-step first, i.e.
        // oldest symbol first — already the label order.
        out
    }
}

impl ConditionalModel for Pst {
    fn alphabet_size(&self) -> usize {
        self.alphabet_size
    }

    fn predict(&self, context: &[Symbol], next: Symbol) -> f64 {
        self.smooth(self.raw_predict(context, next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluseq_seq::Alphabet;

    fn parse(alphabet: &Alphabet, s: &str) -> Sequence {
        Sequence::parse_str(alphabet, s).unwrap()
    }

    fn params() -> PstParams {
        PstParams::default()
            .with_significance(1)
            .without_smoothing()
    }

    #[test]
    fn empty_tree_predicts_uniformly() {
        let pst = Pst::new(4, params());
        assert!(pst.is_empty());
        assert!((pst.raw_predict(&[], Symbol(2)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn root_count_is_sum_of_lengths() {
        let alphabet = Alphabet::from_chars("ab".chars());
        let mut pst = Pst::new(2, params());
        pst.add_sequence(&parse(&alphabet, "abab"));
        pst.add_sequence(&parse(&alphabet, "aa"));
        assert_eq!(pst.total_count(), 6);
    }

    #[test]
    fn segment_counts_match_brute_force() {
        let alphabet = Alphabet::from_chars("ab".chars());
        let text = "ababbab";
        let mut pst = Pst::new(2, params());
        pst.add_sequence(&parse(&alphabet, text));

        // Count every segment occurrence by brute force and compare.
        let syms: Vec<Symbol> = parse(&alphabet, text).iter().collect();
        for start in 0..syms.len() {
            for end in start + 1..=syms.len() {
                let seg = &syms[start..end];
                let expected = (0..=syms.len() - seg.len())
                    .filter(|&i| &syms[i..i + seg.len()] == seg)
                    .count() as u64;
                assert_eq!(
                    pst.segment_count(seg),
                    expected,
                    "segment {:?}",
                    alphabet.render(seg)
                );
            }
        }
    }

    #[test]
    fn conditional_probabilities_are_occurrence_ratios() {
        let alphabet = Alphabet::from_chars("ab".chars());
        // In "aabab": "a" occurs 3 times, followed by a(1), b(2).
        let mut pst = Pst::new(2, params());
        pst.add_sequence(&parse(&alphabet, "aabab"));
        let a = alphabet.get("a").unwrap();
        let b = alphabet.get("b").unwrap();
        assert!((pst.raw_predict(&[a], b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((pst.raw_predict(&[a], a) - 1.0 / 3.0).abs() < 1e-12);
        // "b" occurs twice; only the first occurrence has a successor (a).
        assert!((pst.raw_predict(&[b], a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prediction_node_stops_at_significance_boundary() {
        let alphabet = Alphabet::from_chars("ab".chars());
        let a = alphabet.get("a").unwrap();
        let b = alphabet.get("b").unwrap();
        // In "bababb": "ba" occurs 2x but "aba" only once. With c = 2, the
        // context "aba" must fall back to its longest significant suffix
        // "ba".
        let mut pst = Pst::new(
            2,
            PstParams::default()
                .with_significance(2)
                .without_smoothing(),
        );
        pst.add_sequence(&parse(&alphabet, "bababb"));
        let node = pst.prediction_node(&[a, b, a]);
        assert_eq!(alphabet.render(&pst.label(node)), "ba");
        // The significant context "ba" is always followed by "b" here.
        assert!((pst.raw_predict(&[a, b, a], b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prediction_node_of_significant_context_is_exact() {
        let alphabet = Alphabet::from_chars("ab".chars());
        let a = alphabet.get("a").unwrap();
        let b = alphabet.get("b").unwrap();
        let mut pst = Pst::new(2, params());
        pst.add_sequence(&parse(&alphabet, "abab"));
        let node = pst.prediction_node(&[a, b]);
        assert_eq!(alphabet.render(&pst.label(node)), "ab");
        // A context that extends past what the tree stores falls back to
        // the longest stored suffix.
        let fallback = pst.prediction_node(&[b, b, a, b]);
        assert_eq!(alphabet.render(&pst.label(fallback)), "bab");
    }

    #[test]
    fn max_depth_caps_stored_contexts() {
        let alphabet = Alphabet::from_chars("ab".chars());
        let p = params().with_max_depth(2);
        let mut pst = Pst::new(2, p);
        pst.add_sequence(&parse(&alphabet, "aaaa"));
        let a = alphabet.get("a").unwrap();
        assert_eq!(pst.segment_count(&[a, a]), 3);
        assert_eq!(pst.segment_count(&[a, a, a]), 0, "deeper than max_depth");
        // Every live node is within the depth cap.
        for id in pst.live_node_ids() {
            assert!(pst.node(id).depth <= 2);
        }
    }

    #[test]
    fn smoothing_floors_probabilities() {
        let alphabet = Alphabet::from_chars("ab".chars());
        let p = PstParams::default()
            .with_significance(1)
            .with_smoothing(0.01);
        let mut pst = Pst::new(2, p);
        pst.add_sequence(&parse(&alphabet, "aaaa"));
        let a = alphabet.get("a").unwrap();
        let b = alphabet.get("b").unwrap();
        // Raw P(b | a) = 0, smoothed = p_min.
        assert!((pst.predict(&[a], b) - 0.01).abs() < 1e-12);
        // Raw P(a | a) = 1, smoothed = 1 - n*p_min + p_min = 0.99.
        assert!((pst.predict(&[a], a) - 0.99).abs() < 1e-12);
        // The smoothed vector still sums to 1.
        let total = pst.predict(&[a], a) + pst.predict(&[a], b);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_sequence_equals_new_plus_add() {
        let alphabet = Alphabet::from_chars("ab".chars());
        let seq = parse(&alphabet, "abba");
        let one = Pst::from_sequence(2, params(), &seq);
        let mut two = Pst::new(2, params());
        two.add_sequence(&seq);
        assert_eq!(one.total_count(), two.total_count());
        assert_eq!(one.node_count(), two.node_count());
    }

    #[test]
    fn add_empty_segment_is_a_noop() {
        let mut pst = Pst::new(2, params());
        pst.add_segment(&[]);
        assert!(pst.is_empty());
        assert_eq!(pst.node_count(), 1);
    }

    #[test]
    fn labels_read_oldest_symbol_first() {
        let alphabet = Alphabet::from_chars("ab".chars());
        let mut pst = Pst::new(2, params());
        pst.add_sequence(&parse(&alphabet, "ab"));
        let a = alphabet.get("a").unwrap();
        let b = alphabet.get("b").unwrap();
        // The context "ab" is stored by walking b then a from the root.
        let node = pst.prediction_node(&[a, b]);
        assert_eq!(pst.label(node), vec![a, b]);
    }

    #[test]
    fn bytes_estimate_matches_recomputation() {
        let alphabet = Alphabet::from_chars("abc".chars());
        let mut pst = Pst::new(3, params());
        pst.add_sequence(&parse(&alphabet, "abcabcaabbcc"));
        // Each node's bytes() already covers its own children table, so the
        // whole tree is exactly the sum over live nodes.
        let recomputed: usize = pst.live_node_ids().map(|id| pst.node(id).bytes()).sum();
        assert_eq!(pst.bytes(), recomputed);
    }

    #[test]
    fn sequence_model_trait_is_implemented() {
        let alphabet = Alphabet::from_chars("ab".chars());
        let mut pst = Pst::new(2, params());
        pst.add_sequence(&parse(&alphabet, "abab"));
        let a = alphabet.get("a").unwrap();
        let b = alphabet.get("b").unwrap();
        let p = ConditionalModel::segment_prob(&pst, &[a, b, a]);
        // P(a) * P(b|a) * P(a|ab) = 0.5 * 1.0 * 1.0
        assert!((p - 0.5).abs() < 1e-12);
    }
}
