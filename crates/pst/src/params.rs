//! PST construction parameters.

use serde::{Deserialize, Serialize};

/// Node-pruning strategy used when a tree exceeds its memory budget
/// (paper §5.1).
///
/// All strategies remove only *leaves* (repeatedly, so whole subtrees can
/// disappear) — removing an interior node would orphan the longer contexts
/// beneath it and break the longest-significant-suffix walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PruneStrategy {
    /// *"Prune node with smallest count first."* Nodes with small counts
    /// have the least chance of ever becoming significant.
    SmallestCount,
    /// *"Prune node with longest label first."* Short-memory property:
    /// losing a long context costs the least prediction accuracy.
    LongestLabel,
    /// *"Prune node with expected probability vector first."* A leaf whose
    /// next-symbol distribution is close (in variational distance) to its
    /// parent's loses almost nothing when the parent substitutes for it.
    ExpectedVector,
    /// The paper's composite policy: insignificant leaves go first (by
    /// smallest count, deepest-first tiebreak); once only significant nodes
    /// remain, fall back to [`PruneStrategy::ExpectedVector`].
    Composite,
}

/// Parameters governing a [`crate::Pst`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PstParams {
    /// Maximum context length `L` retained in the tree (the paper's
    /// short-memory bound: the CPD of the next symbol is approximated by
    /// observing no more than the last `L` symbols).
    pub max_depth: usize,
    /// Significance threshold `c`: a node (segment) is significant when its
    /// count is ≥ `c`. The paper's rule of thumb is `c ≥ 30`; small
    /// examples and unit tests use smaller values.
    pub significance: u64,
    /// Byte budget for the tree, or `None` for unbounded. The paper's
    /// experiments cap each tree at 5 MB.
    pub memory_limit: Option<usize>,
    /// Pruning strategy applied when the budget is exceeded.
    pub prune_strategy: PruneStrategy,
    /// Minimum adjusted probability `p_min` (paper §5.2). When `Some`, every
    /// predicted probability is `(1 − n·p_min)·P + p_min` so no symbol is
    /// ever impossible; `None` returns raw empirical probabilities.
    pub smoothing: Option<f64>,
    /// When pruning fires, shrink to this fraction of the budget so
    /// insertion does not re-trigger pruning on every call (hysteresis).
    pub prune_target_fraction: f64,
}

impl Default for PstParams {
    fn default() -> Self {
        Self {
            max_depth: 12,
            significance: 30,
            memory_limit: None,
            prune_strategy: PruneStrategy::Composite,
            smoothing: Some(1e-4),
            prune_target_fraction: 0.8,
        }
    }
}

impl PstParams {
    /// Sets the maximum context length `L`.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Sets the significance threshold `c`.
    pub fn with_significance(mut self, c: u64) -> Self {
        self.significance = c;
        self
    }

    /// Sets the per-tree byte budget.
    pub fn with_memory_limit(mut self, bytes: usize) -> Self {
        self.memory_limit = Some(bytes);
        self
    }

    /// Removes the byte budget.
    pub fn without_memory_limit(mut self) -> Self {
        self.memory_limit = None;
        self
    }

    /// Sets the pruning strategy.
    pub fn with_prune_strategy(mut self, strategy: PruneStrategy) -> Self {
        self.prune_strategy = strategy;
        self
    }

    /// Sets the smoothing floor `p_min`.
    pub fn with_smoothing(mut self, p_min: f64) -> Self {
        assert!(p_min >= 0.0, "p_min must be non-negative");
        self.smoothing = Some(p_min);
        self
    }

    /// Disables smoothing (raw empirical probabilities).
    pub fn without_smoothing(mut self) -> Self {
        self.smoothing = None;
        self
    }

    /// Validates the parameter combination for an alphabet of `n` symbols.
    ///
    /// # Panics
    ///
    /// Panics if `n·p_min > 1` (the adjustment would be ill-formed), if
    /// `max_depth` is zero, or if the prune target fraction is outside
    /// `(0, 1]`.
    pub fn validate(&self, alphabet_size: usize) {
        assert!(self.max_depth > 0, "max_depth must be at least 1");
        assert!(
            self.prune_target_fraction > 0.0 && self.prune_target_fraction <= 1.0,
            "prune_target_fraction must be in (0, 1]"
        );
        if let Some(p_min) = self.smoothing {
            assert!(
                alphabet_size as f64 * p_min <= 1.0,
                "n * p_min must be <= 1 (n = {alphabet_size}, p_min = {p_min})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_follow_the_paper() {
        let p = PstParams::default();
        assert_eq!(p.significance, 30); // the paper's rule of thumb
        assert_eq!(p.prune_strategy, PruneStrategy::Composite);
        assert!(p.smoothing.is_some());
    }

    #[test]
    fn builder_methods_compose() {
        let p = PstParams::default()
            .with_max_depth(5)
            .with_significance(2)
            .with_memory_limit(1024)
            .with_prune_strategy(PruneStrategy::LongestLabel)
            .without_smoothing();
        assert_eq!(p.max_depth, 5);
        assert_eq!(p.significance, 2);
        assert_eq!(p.memory_limit, Some(1024));
        assert_eq!(p.prune_strategy, PruneStrategy::LongestLabel);
        assert_eq!(p.smoothing, None);
        p.validate(100);
    }

    #[test]
    #[should_panic(expected = "n * p_min")]
    fn validate_rejects_oversized_smoothing() {
        PstParams::default().with_smoothing(0.5).validate(100);
    }

    #[test]
    #[should_panic(expected = "max_depth")]
    fn validate_rejects_zero_depth() {
        PstParams::default().with_max_depth(0).validate(2);
    }
}
