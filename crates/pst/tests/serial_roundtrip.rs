//! Property tests for `cluseq_pst::serial`'s primitive framing — the
//! little-endian write/read pairs that *every* on-disk format in the
//! workspace (CPST trees, CSEQ models, CCKP checkpoints) is built from.
//! Until now these were only exercised indirectly through whole-file
//! round-trips; here each primitive is pinned down directly:
//!
//! - encode → decode is the identity for every value, **byte-identical**
//!   for `f64` (NaN payloads, signed zeros, and infinities included —
//!   the framing stores bit patterns, not values);
//! - a heterogeneous token stream decodes in order with no framing drift
//!   and its encoded length is exactly the sum of the fixed widths;
//! - truncated input fails with `UnexpectedEof` instead of fabricating a
//!   value;
//! - `decode_capacity` never trusts a hostile length field.

use proptest::prelude::*;

use cluseq_pst::serial::{
    decode_capacity, read_f64, read_u16, read_u32, read_u64, read_u8, write_f64, write_u16,
    write_u32, write_u64, write_u8,
};

/// One token of a heterogeneous stream: every primitive the framing
/// layer knows, with `f64` carried as raw bits so arbitrary NaN payloads
/// survive proptest shrinking.
#[derive(Debug, Clone, Copy)]
enum Token {
    U8(u8),
    U16(u16),
    U32(u32),
    U64(u64),
    F64Bits(u64),
}

impl Token {
    fn encoded_len(self) -> usize {
        match self {
            Token::U8(_) => 1,
            Token::U16(_) => 2,
            Token::U32(_) => 4,
            Token::U64(_) | Token::F64Bits(_) => 8,
        }
    }
}

fn arb_token() -> impl Strategy<Value = Token> {
    // The vendored proptest stand-in has no `prop_oneof!`; a tag plus a
    // full-width value gives the same coverage.
    (0u8..5, 0u64..=u64::MAX).prop_map(|(tag, v)| match tag {
        0 => Token::U8(v as u8),
        1 => Token::U16(v as u16),
        2 => Token::U32(v as u32),
        3 => Token::U64(v),
        _ => Token::F64Bits(v),
    })
}

proptest! {
    /// Every primitive round-trips to the value (bits, for floats) that
    /// went in, and each occupies exactly its fixed width.
    #[test]
    fn each_primitive_round_trips(
        a in 0u8..=u8::MAX,
        b in 0u16..=u16::MAX,
        c in 0u32..=u32::MAX,
        d in 0u64..=u64::MAX,
        bits in 0u64..=u64::MAX,
    ) {
        let mut buf = Vec::new();
        write_u8(&mut buf, a).unwrap();
        write_u16(&mut buf, b).unwrap();
        write_u32(&mut buf, c).unwrap();
        write_u64(&mut buf, d).unwrap();
        write_f64(&mut buf, f64::from_bits(bits)).unwrap();
        prop_assert_eq!(buf.len(), 1 + 2 + 4 + 8 + 8);

        let mut r = buf.as_slice();
        prop_assert_eq!(read_u8(&mut r).unwrap(), a);
        prop_assert_eq!(read_u16(&mut r).unwrap(), b);
        prop_assert_eq!(read_u32(&mut r).unwrap(), c);
        prop_assert_eq!(read_u64(&mut r).unwrap(), d);
        prop_assert_eq!(read_f64(&mut r).unwrap().to_bits(), bits);
        prop_assert!(r.is_empty(), "decoder left {} undrained bytes", r.len());
    }

    /// A heterogeneous stream of tokens decodes in order with no framing
    /// drift: no token's width ever depends on its neighbours, and the
    /// stream length is the sum of the widths.
    #[test]
    fn token_streams_never_drift(tokens in prop::collection::vec(arb_token(), 0..64)) {
        let mut buf = Vec::new();
        for &t in &tokens {
            match t {
                Token::U8(v) => write_u8(&mut buf, v).unwrap(),
                Token::U16(v) => write_u16(&mut buf, v).unwrap(),
                Token::U32(v) => write_u32(&mut buf, v).unwrap(),
                Token::U64(v) => write_u64(&mut buf, v).unwrap(),
                Token::F64Bits(v) => write_f64(&mut buf, f64::from_bits(v)).unwrap(),
            }
        }
        let expected: usize = tokens.iter().map(|t| t.encoded_len()).sum();
        prop_assert_eq!(buf.len(), expected);

        let mut r = buf.as_slice();
        for (i, &t) in tokens.iter().enumerate() {
            match t {
                Token::U8(v) => prop_assert_eq!(read_u8(&mut r).unwrap(), v, "token {}", i),
                Token::U16(v) => prop_assert_eq!(read_u16(&mut r).unwrap(), v, "token {}", i),
                Token::U32(v) => prop_assert_eq!(read_u32(&mut r).unwrap(), v, "token {}", i),
                Token::U64(v) => prop_assert_eq!(read_u64(&mut r).unwrap(), v, "token {}", i),
                Token::F64Bits(v) => {
                    prop_assert_eq!(read_f64(&mut r).unwrap().to_bits(), v, "token {}", i)
                }
            }
        }
        prop_assert!(r.is_empty());
    }

    /// `f64` framing is bit-exact for the values ordinary equality can't
    /// see: NaNs with arbitrary payloads compare unequal to themselves,
    /// and `-0.0 == 0.0`, so the round-trip must be checked on bits.
    #[test]
    fn f64_framing_is_bit_exact_for_nan_payloads(payload in 0u64..=u64::MAX) {
        for bits in [
            payload,
            f64::NAN.to_bits() | (payload & ((1u64 << 52) - 1)), // NaN, arbitrary payload
            (-0.0f64).to_bits(),
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
        ] {
            let mut buf = Vec::new();
            write_f64(&mut buf, f64::from_bits(bits)).unwrap();
            prop_assert_eq!(read_f64(&mut buf.as_slice()).unwrap().to_bits(), bits);
        }
    }

    /// Truncated input is an error, never a fabricated value: reading any
    /// multi-byte primitive from a buffer one byte short fails with
    /// `UnexpectedEof`.
    #[test]
    fn truncated_reads_fail_cleanly(v in 0u64..=u64::MAX) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v).unwrap();
        for short in 0..8usize {
            let mut r = &buf[..short];
            let err = read_u64(&mut r).unwrap_err();
            prop_assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        }
        let mut r = &buf[..1];
        prop_assert!(read_u16(&mut r).is_err());
        let mut r = &buf[..3];
        prop_assert!(read_u32(&mut r).is_err());
        let mut r = &buf[..7];
        prop_assert!(read_f64(&mut r).is_err());
    }

    /// `decode_capacity` pre-allocates for honest lengths and caps
    /// hostile ones: never larger than the claimed length, never larger
    /// than the 64 KiB bound, and exact below the bound.
    #[test]
    fn decode_capacity_is_bounded(len in 0usize..=usize::MAX) {
        let cap = decode_capacity(len);
        prop_assert!(cap <= len);
        prop_assert!(cap <= 64 * 1024);
        if len <= 64 * 1024 {
            prop_assert_eq!(cap, len);
        }
    }
}
