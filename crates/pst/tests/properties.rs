//! Property-based tests for the probabilistic suffix tree.
//!
//! Every property is checked against a brute-force reference computation on
//! randomly generated small sequences.

use proptest::prelude::*;

use cluseq_pst::{ConditionalModel, PruneStrategy, Pst, PstParams};
use cluseq_seq::{Sequence, Symbol};

/// Random sequence over an alphabet of `n` symbols.
fn seq_strategy(n: u16, max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec((0..n).prop_map(Symbol), 0..max_len)
}

/// Brute-force count of `seg` occurrences in `text`.
fn brute_count(text: &[Symbol], seg: &[Symbol]) -> u64 {
    if seg.is_empty() || seg.len() > text.len() {
        return 0;
    }
    (0..=text.len() - seg.len())
        .filter(|&i| &text[i..i + seg.len()] == seg)
        .count() as u64
}

/// Brute-force next-symbol count: occurrences of `seg` followed by `next`.
fn brute_next_count(text: &[Symbol], seg: &[Symbol], next: Symbol) -> u64 {
    if text.len() < seg.len() + 1 {
        return 0;
    }
    (0..text.len() - seg.len())
        .filter(|&i| &text[i..i + seg.len()] == seg && text[i + seg.len()] == next)
        .count() as u64
}

fn build(text: &[Symbol], n: usize, params: PstParams) -> Pst {
    let mut pst = Pst::new(n, params);
    pst.add_sequence(&Sequence::new(text.to_vec()));
    pst
}

fn base_params() -> PstParams {
    PstParams::default()
        .with_significance(1)
        .without_smoothing()
}

proptest! {
    /// Every stored segment count equals the brute-force occurrence count.
    #[test]
    fn segment_counts_agree_with_brute_force(text in seq_strategy(3, 40)) {
        let pst = build(&text, 3, base_params().with_max_depth(6));
        for start in 0..text.len() {
            for end in start + 1..=text.len().min(start + 6) {
                let seg = &text[start..end];
                prop_assert_eq!(pst.segment_count(seg), brute_count(&text, seg));
            }
        }
    }

    /// Raw conditional probabilities equal next-count / successor-total for
    /// significant contexts.
    #[test]
    fn raw_probabilities_are_successor_ratios(text in seq_strategy(3, 40)) {
        let pst = build(&text, 3, base_params().with_max_depth(4));
        for start in 0..text.len() {
            for end in start + 1..=text.len().min(start + 4) {
                let seg = &text[start..end];
                let total: u64 = (0..3)
                    .map(|s| brute_next_count(&text, seg, Symbol(s)))
                    .sum();
                if total == 0 {
                    continue;
                }
                // The context node exists and is significant (c = 1), so
                // the prediction node is exactly this segment.
                for s in 0..3u16 {
                    let expected =
                        brute_next_count(&text, seg, Symbol(s)) as f64 / total as f64;
                    let got = pst.raw_predict(seg, Symbol(s));
                    prop_assert!((got - expected).abs() < 1e-9,
                        "segment {seg:?} next {s}: got {got}, expected {expected}");
                }
            }
        }
    }

    /// The probability vector at every prediction node sums to 1 (when the
    /// node has any successor), smoothed or not.
    #[test]
    fn probability_vectors_normalize(
        text in seq_strategy(4, 50),
        c in 1u64..5,
        smooth in prop::option::of(0.0001f64..0.01),
    ) {
        prop_assume!(!text.is_empty());
        let mut params = base_params().with_significance(c);
        if let Some(p_min) = smooth {
            params = params.with_smoothing(p_min);
        }
        let pst = build(&text, 4, params);
        for start in 0..text.len().min(8) {
            let context = &text[start..text.len().min(start + 5)];
            let total: f64 = (0..4).map(|s| pst.predict(context, Symbol(s))).sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "sums to {total}");
        }
    }

    /// Smoothing keeps every probability within [p_min, 1 - (n-1)·p_min].
    #[test]
    fn smoothing_bounds_probabilities(text in seq_strategy(3, 30), p_min in 0.0001f64..0.05) {
        prop_assume!(!text.is_empty());
        let pst = build(&text, 3, base_params().with_smoothing(p_min));
        for s in 0..3u16 {
            let p = pst.predict(&text[..text.len().min(3)], Symbol(s));
            prop_assert!(p >= p_min - 1e-12);
            prop_assert!(p <= 1.0 - 2.0 * p_min + 1e-12);
        }
    }

    /// The prediction node's label is the longest significant suffix of the
    /// context: significant itself, and either the full context (capped at
    /// max_depth) or with an insignificant/absent one-longer extension.
    #[test]
    fn prediction_node_is_longest_significant_suffix(
        text in seq_strategy(3, 60),
        c in 1u64..6,
    ) {
        let params = base_params().with_significance(c).with_max_depth(5);
        let pst = build(&text, 3, params);
        prop_assume!(text.len() >= 2);
        for start in 0..text.len() - 1 {
            let context = &text[start..];
            let node = pst.prediction_node(context);
            let label = pst.label(node);
            // 1. The label is a suffix of the context.
            prop_assert!(context.ends_with(&label));
            // 2. The label is significant (roots always are).
            if !label.is_empty() {
                prop_assert!(brute_count(&text, &label) >= c);
            }
            // 3. Maximality: the one-longer suffix is absent from the tree,
            //    insignificant, or past the depth cap.
            if label.len() < context.len() && label.len() < 5 {
                let longer = &context[context.len() - label.len() - 1..];
                prop_assert!(brute_count(&text, longer) < c,
                    "a longer significant suffix {longer:?} was available");
            }
        }
    }

    /// Pruning always lands at or below the target and preserves all
    /// structural invariants, for every strategy.
    #[test]
    fn pruning_respects_target_and_invariants(
        text in seq_strategy(4, 120),
        strategy_idx in 0usize..4,
        keep in 0.2f64..0.9,
    ) {
        prop_assume!(text.len() >= 10);
        let strategy = [
            PruneStrategy::SmallestCount,
            PruneStrategy::LongestLabel,
            PruneStrategy::ExpectedVector,
            PruneStrategy::Composite,
        ][strategy_idx];
        let mut pst = build(&text, 4, base_params().with_prune_strategy(strategy));
        let target = (pst.bytes() as f64 * keep) as usize;
        pst.prune_to(target);
        pst.check_invariants();
        // Either we fit, or only the root is left (nothing more to prune).
        prop_assert!(pst.bytes() <= target || pst.node_count() == 1);
        // Prediction still yields valid probabilities everywhere.
        let p = pst.raw_predict(&text[..3.min(text.len())], Symbol(0));
        prop_assert!((0.0..=1.0).contains(&p));
    }

    /// Inserting sequences one at a time or as segments yields identical
    /// counts (insertion is associative over the root bookkeeping).
    #[test]
    fn insertion_order_does_not_change_counts(
        a in seq_strategy(3, 30),
        b in seq_strategy(3, 30),
    ) {
        let mut ab = Pst::new(3, base_params());
        ab.add_segment(&a);
        ab.add_segment(&b);
        let mut ba = Pst::new(3, base_params());
        ba.add_segment(&b);
        ba.add_segment(&a);
        prop_assert_eq!(ab.total_count(), ba.total_count());
        prop_assert_eq!(ab.node_count(), ba.node_count());
        for probe_start in 0..a.len().min(5) {
            let probe = &a[probe_start..a.len().min(probe_start + 4)];
            prop_assert_eq!(ab.segment_count(probe), ba.segment_count(probe));
        }
    }

    /// segment_prob is the product of conditional predictions and lies in
    /// (0, 1] under smoothing.
    #[test]
    fn segment_prob_is_a_probability(text in seq_strategy(3, 30)) {
        prop_assume!(!text.is_empty());
        let pst = build(&text, 3, PstParams::default().with_significance(1));
        let p = pst.segment_prob(&text);
        prop_assert!(p > 0.0, "smoothing forbids zero probability");
        prop_assert!(p <= 1.0 + 1e-12);
    }

    /// The incremental scanner's prediction node equals the root walk's at
    /// every position of every probe, on any training data, for any
    /// significance threshold and depth cap.
    #[test]
    fn scanner_equals_root_walk(
        train in seq_strategy(3, 80),
        probe in seq_strategy(3, 50),
        c in 1u64..6,
        depth in 2usize..7,
    ) {
        prop_assume!(!train.is_empty());
        let params = base_params().with_significance(c).with_max_depth(depth);
        let pst = build(&train, 3, params);
        prop_assert!(pst.right_links_intact());
        let mut scanner = pst.scanner();
        prop_assert!(scanner.is_fast());
        for i in 0..probe.len() {
            prop_assert_eq!(
                scanner.prediction_node(),
                pst.prediction_node(&probe[..i]),
                "diverged at position {} (c={}, depth={})", i, c, depth
            );
            scanner.advance(probe[i]);
        }
    }

    /// Merging two trees equals building one tree from the union of their
    /// training data, for arbitrary training sets.
    #[test]
    fn merge_equals_joint_construction(
        ta in seq_strategy(3, 60),
        tb in seq_strategy(3, 60),
        probe in seq_strategy(3, 15),
        depth in 2usize..6,
    ) {
        let params = base_params().with_max_depth(depth);
        let mut a = Pst::new(3, params);
        a.add_segment(&ta);
        let mut b = Pst::new(3, params);
        b.add_segment(&tb);
        let mut joint = Pst::new(3, params);
        joint.add_segment(&ta);
        joint.add_segment(&tb);

        a.merge(&b);
        a.check_invariants();
        prop_assert_eq!(a.total_count(), joint.total_count());
        prop_assert_eq!(a.node_count(), joint.node_count());
        for i in 0..probe.len() {
            for s in 0..3u16 {
                prop_assert_eq!(
                    a.raw_predict(&probe[..i], Symbol(s)).to_bits(),
                    joint.raw_predict(&probe[..i], Symbol(s)).to_bits(),
                    "context {:?} next {}", &probe[..i], s
                );
            }
        }
    }

    /// Binary save/load round-trips any tree exactly: same predictions,
    /// same structure, invariants intact.
    #[test]
    fn serialization_round_trips(
        train in seq_strategy(4, 100),
        probe in seq_strategy(4, 20),
        c in 1u64..5,
        prune in proptest::bool::ANY,
    ) {
        prop_assume!(!train.is_empty());
        let mut pst = build(&train, 4, base_params().with_significance(c).with_max_depth(5));
        if prune {
            let target = pst.bytes() * 2 / 3;
            pst.prune_to(target);
        }
        let mut buf = Vec::new();
        pst.save(&mut buf).unwrap();
        let loaded = Pst::load(&mut buf.as_slice()).unwrap();
        loaded.check_invariants();
        prop_assert_eq!(loaded.total_count(), pst.total_count());
        prop_assert_eq!(loaded.node_count(), pst.node_count());
        prop_assert_eq!(loaded.right_links_intact(), pst.right_links_intact());
        for i in 0..probe.len() {
            for s in 0..4u16 {
                prop_assert_eq!(
                    pst.raw_predict(&probe[..i], Symbol(s)).to_bits(),
                    loaded.raw_predict(&probe[..i], Symbol(s)).to_bits(),
                    "prediction differs at position {}", i
                );
            }
        }
    }

    /// After arbitrary pruning, the scanner (now possibly in fallback
    /// mode) still matches the root walk exactly.
    #[test]
    fn scanner_stays_exact_after_pruning(
        train in seq_strategy(3, 120),
        probe in seq_strategy(3, 40),
        keep in 0.2f64..0.9,
    ) {
        prop_assume!(train.len() >= 10);
        let mut pst = build(&train, 3, base_params().with_max_depth(5));
        let target = (pst.bytes() as f64 * keep) as usize;
        pst.prune_to(target);
        let mut scanner = pst.scanner();
        for i in 0..probe.len() {
            prop_assert_eq!(
                scanner.prediction_node(),
                pst.prediction_node(&probe[..i]),
                "diverged at position {}", i
            );
            scanner.advance(probe[i]);
        }
    }
}
