//! `cluseq top` — a live single-screen dashboard over a serve daemon's
//! `/metrics` endpoint.
//!
//! The command polls the Prometheus text exposition (either the serve
//! port's HTTP facade or the standalone `--metrics-addr` exporter — both
//! serve the same registry), computes rates from consecutive scrapes, and
//! renders qps, in-flight, queue depth, per-opcode latency percentiles,
//! generation, and RSS. `--once` takes two scrapes a beat apart, prints a
//! single frame, and exits — for scripts and CI smoke jobs.
//!
//! Percentiles are computed from the exporter's fixed power-of-two
//! buckets by linear interpolation within the rank bucket (the same rule
//! as the in-process snapshot path), so a reported quantile is within one
//! bucket width — a factor of two — of the true value.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use crate::args::Args;

/// A parsed `/metrics` scrape: scalar samples by full name, histogram
/// buckets by base name as `(le_seconds, cumulative_count)` in ascending
/// `le` order.
#[derive(Debug, Default)]
struct Scrape {
    scalars: HashMap<String, f64>,
    buckets: HashMap<String, Vec<(f64, f64)>>,
    at: Option<Instant>,
}

impl Scrape {
    fn scalar(&self, name: &str) -> f64 {
        self.scalars.get(name).copied().unwrap_or(0.0)
    }
}

/// Runs the subcommand.
pub fn run(args: &Args) -> ExitCode {
    let addr = args
        .get_str("addr")
        .or(args.positional.first().map(String::as_str))
        .unwrap_or("127.0.0.1:7878")
        .to_owned();
    let once = args.has("once");
    let interval = Duration::from_millis(args.get("interval-ms", 2000u64));

    let mut previous = match scrape(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: scraping http://{addr}/metrics: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The first frame needs two samples for rates; in --once mode a short
    // beat is enough to tell a live daemon's qps from zero.
    std::thread::sleep(if once {
        Duration::from_millis(250)
    } else {
        interval
    });
    loop {
        let current = match scrape(&addr) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: scraping http://{addr}/metrics: {e}");
                return ExitCode::FAILURE;
            }
        };
        let frame = render(&addr, &previous, &current);
        if once {
            print!("{frame}");
            return ExitCode::SUCCESS;
        }
        // ANSI clear + home: redraw in place.
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::stdout().flush();
        previous = current;
        std::thread::sleep(interval);
    }
}

/// One GET over a plain TcpStream (`Connection: close`, read to EOF) —
/// the daemon's facade and the standalone exporter both speak exactly
/// this much HTTP.
fn scrape(addr: &str) -> Result<Scrape, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| e.to_string())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| e.to_string())?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed HTTP response".to_string())?;
    let status = head.split_whitespace().nth(1).unwrap_or("");
    if status != "200" {
        return Err(format!(
            "HTTP {status} (is the daemon running with --metrics-addr, --slow-log, or --trace?)"
        ));
    }
    Ok(parse_metrics(body))
}

/// Parses Prometheus text exposition format 0.0.4: `name value` scalars,
/// `name_bucket{le="X"} value` histogram buckets. Unknown or malformed
/// lines are skipped — the dashboard degrades, never crashes.
fn parse_metrics(body: &str) -> Scrape {
    let mut out = Scrape {
        at: Some(Instant::now()),
        ..Default::default()
    };
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name_part, value_part)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = parse_value(value_part) else {
            continue;
        };
        if let Some((name, labels)) = name_part.split_once('{') {
            if let Some(base) = name.strip_suffix("_bucket") {
                if let Some(le) = labels
                    .trim_end_matches('}')
                    .split(',')
                    .find_map(|l| l.strip_prefix("le=\""))
                    .map(|v| v.trim_end_matches('"'))
                {
                    if let Ok(le) = parse_value(le) {
                        out.buckets
                            .entry(base.to_string())
                            .or_default()
                            .push((le, value));
                    }
                }
                continue;
            }
            out.scalars.insert(name.to_string(), value);
        } else {
            out.scalars.insert(name_part.to_string(), value);
        }
    }
    for buckets in out.buckets.values_mut() {
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    }
    out
}

fn parse_value(s: &str) -> Result<f64, ()> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        _ => s.parse::<f64>().map_err(|_| ()),
    }
}

/// Quantile from cumulative buckets by linear interpolation within the
/// rank bucket (mirrors the registry's exact-rank snapshot path). `None`
/// when the histogram is empty.
fn quantile(buckets: &[(f64, f64)], q: f64) -> Option<f64> {
    let total = buckets.last().map(|&(_, c)| c)?;
    if total <= 0.0 {
        return None;
    }
    let rank = (q * total).ceil().clamp(1.0, total);
    let mut lower = 0.0;
    let mut before = 0.0;
    for &(le, cumulative) in buckets {
        if cumulative >= rank {
            let in_bucket = cumulative - before;
            if !le.is_finite() {
                // The overflow bucket has no upper edge: report its floor.
                return Some(lower);
            }
            if in_bucket <= 0.0 {
                return Some(le);
            }
            let into = (rank - before) / in_bucket;
            return Some(lower + (le - lower) * into);
        }
        before = cumulative;
        lower = le;
    }
    None
}

fn fmt_ms(seconds: Option<f64>) -> String {
    match seconds {
        Some(s) => format!("{:>8.3}", s * 1000.0),
        None => format!("{:>8}", "-"),
    }
}

fn fmt_count(v: f64) -> String {
    format!("{:>10}", v as u64)
}

fn fmt_bytes(v: f64) -> String {
    if v <= 0.0 {
        "n/a".into()
    } else if v >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2} GiB", v / (1024.0 * 1024.0 * 1024.0))
    } else if v >= 1024.0 * 1024.0 {
        format!("{:.1} MiB", v / (1024.0 * 1024.0))
    } else {
        format!("{:.0} KiB", v / 1024.0)
    }
}

/// Renders one dashboard frame from two consecutive scrapes.
fn render(addr: &str, previous: &Scrape, current: &Scrape) -> String {
    let dt = match (previous.at, current.at) {
        (Some(a), Some(b)) => b.duration_since(a).as_secs_f64().max(1e-9),
        _ => 1.0,
    };
    let served = |s: &Scrape| {
        s.scalar("cluseq_serve_requests_total") + s.scalar("cluseq_serve_errors_total")
    };
    let qps = ((served(current) - served(previous)) / dt).max(0.0);
    let mut out = String::new();
    out.push_str(&format!(
        "cluseq top — {addr}   generation {}   rss {}\n",
        current.scalar("cluseq_serve_generation") as u64,
        fmt_bytes(current.scalar("cluseq_process_rss_bytes")),
    ));
    out.push_str(&format!(
        "qps {qps:>8.1}   in-flight {:>4}   queue depth {:>4}   batches {}   \
         swaps {}   errors {}   slow {}\n\n",
        current.scalar("cluseq_serve_in_flight") as u64,
        current.scalar("cluseq_serve_queue_depth") as u64,
        current.scalar("cluseq_serve_batches_total") as u64,
        current.scalar("cluseq_serve_swaps_total") as u64,
        current.scalar("cluseq_serve_errors_total") as u64,
        current.scalar("cluseq_serve_slow_requests_total") as u64,
    ));
    out.push_str(&format!(
        "{:<10} {:>10} {:>8} {:>8} {:>8} {:>8}  (ms)\n",
        "op", "count", "p50", "p95", "p99", "p999"
    ));
    for (label, counter, hist) in [
        ("assign", "cluseq_serve_assign_requests_total", "cluseq_serve_assign_seconds"),
        ("score", "cluseq_serve_score_requests_total", "cluseq_serve_score_seconds"),
        ("anomaly", "cluseq_serve_anomaly_requests_total", "cluseq_serve_anomaly_seconds"),
        ("admin", "", "cluseq_serve_admin_seconds"),
    ] {
        let count = if counter.is_empty() {
            current.scalar("cluseq_serve_info_requests_total")
                + current.scalar("cluseq_serve_swap_requests_total")
                + current.scalar("cluseq_serve_shutdown_requests_total")
        } else {
            current.scalar(counter)
        };
        let buckets = current.buckets.get(hist).map(Vec::as_slice).unwrap_or(&[]);
        out.push_str(&format!(
            "{:<10} {} {} {} {} {}\n",
            label,
            fmt_count(count),
            fmt_ms(quantile(buckets, 0.50)),
            fmt_ms(quantile(buckets, 0.95)),
            fmt_ms(quantile(buckets, 0.99)),
            fmt_ms(quantile(buckets, 0.999)),
        ));
    }
    out.push_str(&format!(
        "\n{:<12} {:>8}  (ms, mean)\n",
        "stage", "mean"
    ));
    for (label, base) in [
        ("accept", "cluseq_serve_stage_accept_seconds"),
        ("decode", "cluseq_serve_stage_decode_seconds"),
        ("queue_wait", "cluseq_serve_stage_queue_wait_seconds"),
        ("batch_form", "cluseq_serve_stage_batch_form_seconds"),
        ("scan", "cluseq_serve_stage_scan_seconds"),
        ("encode", "cluseq_serve_stage_encode_seconds"),
        ("write_back", "cluseq_serve_stage_write_back_seconds"),
    ] {
        let count = current.scalar(&format!("{base}_count"));
        let sum = current.scalar(&format!("{base}_sum"));
        let mean = if count > 0.0 { Some(sum / count) } else { None };
        out.push_str(&format!("{label:<12} {}\n", fmt_ms(mean)));
    }
    let jobs_count = current.scalar("cluseq_serve_batch_jobs_count");
    if jobs_count > 0.0 {
        out.push_str(&format!(
            "\nmean batch size {:.1} jobs\n",
            current.scalar("cluseq_serve_batch_jobs_sum") / jobs_count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_parses_scalars_and_buckets() {
        let body = "# HELP cluseq_serve_requests_total x\n\
                    # TYPE cluseq_serve_requests_total counter\n\
                    cluseq_serve_requests_total 42\n\
                    cluseq_serve_assign_seconds_bucket{le=\"0.001\"} 3\n\
                    cluseq_serve_assign_seconds_bucket{le=\"+Inf\"} 4\n\
                    cluseq_serve_assign_seconds_sum 0.005\n\
                    garbage line without value x\n";
        let s = parse_metrics(body);
        assert_eq!(s.scalar("cluseq_serve_requests_total"), 42.0);
        let buckets = &s.buckets["cluseq_serve_assign_seconds"];
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (0.001, 3.0));
        assert!(buckets[1].0.is_infinite());
    }

    #[test]
    fn quantile_interpolates_and_handles_overflow() {
        let buckets = vec![(0.001, 0.0), (0.002, 10.0), (f64::INFINITY, 10.0)];
        let p50 = quantile(&buckets, 0.50).unwrap();
        assert!((0.001..0.002).contains(&p50), "p50 {p50}");
        // All mass in the overflow bucket: the floor is the last finite edge.
        let over = vec![(0.001, 0.0), (f64::INFINITY, 5.0)];
        assert_eq!(quantile(&over, 0.99), Some(0.001));
        assert_eq!(quantile(&[], 0.5), None);
        let empty = vec![(0.001, 0.0), (f64::INFINITY, 0.0)];
        assert_eq!(quantile(&empty, 0.5), None);
    }

    #[test]
    fn render_survives_empty_scrapes() {
        let a = Scrape::default();
        let b = Scrape::default();
        let frame = render("127.0.0.1:0", &a, &b);
        assert!(frame.contains("cluseq top"));
        assert!(frame.contains("assign"));
        assert!(frame.contains("queue_wait"));
    }
}
