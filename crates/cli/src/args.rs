//! A minimal `--flag value` argument parser (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` / `--switch` options.
#[derive(Debug, Default)]
pub struct Args {
    pub command: Option<String>,
    pub positional: Vec<String>,
    options: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `argv[1..]`: the first non-flag token is the subcommand,
    /// later non-flag tokens are positional. A `--key` followed by a
    /// non-flag token consumes it as the value; a trailing or
    /// flag-followed `--key` is a boolean switch.
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        out.options.insert(key.to_owned(), value);
                    }
                    _ => out.switches.push(key.to_owned()),
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                out.positional.push(tok);
            }
        }
        out
    }

    /// A typed option with a default.
    ///
    /// Exits with status 2 on a malformed value, printing the type's own
    /// parse error (e.g. an unknown `--scan-kernel` name lists the valid
    /// set). Use [`Args::try_get`] where the caller wants the error
    /// instead of the exit.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        self.try_get(key, default).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// [`Args::get`] that surfaces the parse failure instead of exiting:
    /// `Err` carries `--key value: <the type's parse error>`.
    pub fn try_get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.options.get(key) {
            Some(raw) => raw.parse().map_err(|e| format!("--{key} {raw}: {e}")),
            None => Ok(default),
        }
    }

    /// A string option.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a boolean switch was passed.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn parses_command_and_positionals() {
        let a = parse("cluster input.txt more.txt");
        assert_eq!(a.command.as_deref(), Some("cluster"));
        assert_eq!(a.positional, vec!["input.txt", "more.txt"]);
    }

    #[test]
    fn parses_typed_options() {
        let a = parse("generate --sequences 500 --avg-len 120");
        assert_eq!(a.get("sequences", 0usize), 500);
        assert_eq!(a.get("avg-len", 0usize), 120);
        assert_eq!(a.get("missing", 7u32), 7);
    }

    #[test]
    fn parses_switches() {
        let a = parse("cluster --verbose --seed 3 --quiet");
        assert!(a.has("verbose"));
        assert!(a.has("quiet"));
        assert!(!a.has("seed"));
        assert_eq!(a.get("seed", 0u64), 3);
    }

    #[test]
    fn empty_argv() {
        let a = parse("");
        assert!(a.command.is_none());
        assert!(a.positional.is_empty());
    }

    #[test]
    fn try_get_surfaces_parse_errors_with_flag_context() {
        let a = parse("cluster --sequences banana");
        let err = a.try_get("sequences", 0usize).unwrap_err();
        assert!(err.starts_with("--sequences banana:"), "{err}");
        assert_eq!(a.try_get("missing", 7u32), Ok(7));
    }

    #[test]
    fn unknown_scan_kernel_error_lists_the_valid_set() {
        use cluseq_core::ScanKernel;
        let a = parse("cluster data.txt --scan-kernel warp");
        let err = a.try_get("scan-kernel", ScanKernel::Compiled).unwrap_err();
        assert!(err.starts_with("--scan-kernel warp:"), "{err}");
        for name in ["interpreted", "compiled", "batched", "quantized"] {
            assert!(err.contains(name), "{err} should list {name}");
        }
        // All four valid names parse.
        for kernel in ScanKernel::ALL {
            let a = parse(&format!("cluster data.txt --scan-kernel {kernel}"));
            assert_eq!(a.try_get("scan-kernel", ScanKernel::Compiled), Ok(kernel));
        }
    }
}
