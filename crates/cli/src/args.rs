//! A minimal `--flag value` argument parser (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` / `--switch` options.
#[derive(Debug, Default)]
pub struct Args {
    pub command: Option<String>,
    pub positional: Vec<String>,
    options: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `argv[1..]`: the first non-flag token is the subcommand,
    /// later non-flag tokens are positional. A `--key` followed by a
    /// non-flag token consumes it as the value; a trailing or
    /// flag-followed `--key` is a boolean switch.
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        out.options.insert(key.to_owned(), value);
                    }
                    _ => out.switches.push(key.to_owned()),
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                out.positional.push(tok);
            }
        }
        out
    }

    /// A typed option with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        match self.options.get(key) {
            Some(raw) => raw.parse().unwrap_or_else(|e| {
                eprintln!("error: --{key} {raw}: {e}");
                std::process::exit(2);
            }),
            None => default,
        }
    }

    /// A string option.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a boolean switch was passed.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Args {
        Args::parse(line.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn parses_command_and_positionals() {
        let a = parse("cluster input.txt more.txt");
        assert_eq!(a.command.as_deref(), Some("cluster"));
        assert_eq!(a.positional, vec!["input.txt", "more.txt"]);
    }

    #[test]
    fn parses_typed_options() {
        let a = parse("generate --sequences 500 --avg-len 120");
        assert_eq!(a.get("sequences", 0usize), 500);
        assert_eq!(a.get("avg-len", 0usize), 120);
        assert_eq!(a.get("missing", 7u32), 7);
    }

    #[test]
    fn parses_switches() {
        let a = parse("cluster --verbose --seed 3 --quiet");
        assert!(a.has("verbose"));
        assert!(a.has("quiet"));
        assert!(!a.has("seed"));
        assert_eq!(a.get("seed", 0u64), 3);
    }

    #[test]
    fn empty_argv() {
        let a = parse("");
        assert!(a.command.is_none());
        assert!(a.positional.is_empty());
    }
}
