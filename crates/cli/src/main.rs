//! `cluseq` — command-line driver for the CLUSEQ sequence-clustering
//! system.
//!
//! Subcommands:
//!
//! * `generate` — write a synthetic labeled database (lines format);
//! * `cluster` — cluster a lines-format file, print memberships;
//! * `evaluate` — cluster a labeled file and print quality metrics;
//! * `serve` — long-running clustering-as-a-service daemon over a frozen
//!   model (binary protocol + HTTP JSON facade, hot swap on SIGHUP,
//!   request observability with slow-request log and health endpoints);
//! * `top` — live dashboard over a serve daemon's `/metrics`;
//! * `trace-summary` — render a `--trace` JSONL file (clustering or
//!   serve) as tables;
//! * `help` — usage.
//!
//! ```sh
//! cluseq generate --sequences 500 --clusters 5 --out data.txt
//! cluseq cluster data.txt --significance 10
//! cluseq evaluate data.txt --significance 10
//! ```

mod args;
mod top;

use std::process::ExitCode;

use args::Args;
use cluseq_core::persist::SavedModel;
use cluseq_core::telemetry::{
    CheckpointEvent, IterationRecord, ResumeInfo, RunContext, RunObserver, RunReport, RunSummary,
};
use cluseq_core::trace::{sink, summary};
use cluseq_core::{
    Checkpoint, Cluseq, CluseqParams, ExaminationOrder, ScanKernel, ScanMode, TraceConfig,
    TraceSession,
};
use cluseq_datagen::{LanguageSpec, ProteinFamilySpec, SyntheticSpec};
use cluseq_eval::{Confusion, MatchStrategy, Stopwatch};
use cluseq_seq::codec;
use cluseq_seq::store::FileStore;
use cluseq_seq::{SequenceDatabase, SequenceStore, StoreKind};

const USAGE: &str = "\
cluseq — sequence clustering by sequential statistical features (ICDE 2003)

USAGE:
  cluseq generate [--kind synthetic|protein|language] [--sequences N]
                  [--clusters K] [--avg-len L] [--alphabet A]
                  [--outliers FRAC] [--seed S] [--out FILE] [--format text|bin]
  cluseq cluster  FILE [clustering options] [--save-model MODEL]
  cluseq evaluate FILE [clustering options]
  cluseq classify FILE --model MODEL
  cluseq inspect  --model MODEL [--max-nodes N]
  cluseq serve    --model MODEL [--data FILE [--store memory|file]]
                  [serve options]
  cluseq top      [ADDR] [--once] [--interval-ms MS]
  cluseq trace-summary TRACE_FILE

SERVE OPTIONS:
  --model MODEL          frozen model to serve: a `cluster --save-model`
                         snapshot (CSEQ) or a crash-recovery checkpoint
                         (CCKP; needs --data, the training file, to
                         re-derive the background model)
  --store memory|file    how --data is read: fully resident, or streamed
                         out of core from a CSEQ binary (default memory)
  --addr ADDR            bind address (default 127.0.0.1:7878; port 0
                         picks a free port — the bound address is printed)
  --threads N            scoring worker threads per batch (default 1)
  --max-batch N          most requests one scoring batch drains (default 64)
  --scan-kernel interpreted|compiled|batched|quantized
                         query scan kernel (default compiled; batched
                         scores like compiled, quantized trades a bounded
                         score error for smaller tables)
  --frame-timeout-ms MS  slow-loris cutoff: how long a started request may
                         take to finish arriving (default 5000)
  --metrics-addr ADDR    standalone Prometheus exporter for the serve
                         registry: per-opcode request counters and latency
                         histograms, per-stage timing histograms, queue
                         depth, in-flight, batch size, generation, RSS
                         (the serve port's GET /metrics renders the same)
  --slow-log PATH        append a crash-safe JSONL record (request id,
                         opcode, generation, full stage timing breakdown)
                         for every request at or over the slow threshold;
                         an existing file gets its torn tail repaired and
                         the stream continues (render with trace-summary)
  --slow-threshold-ms MS slow-request threshold (default 100)
  --trace PATH           append serve lifecycle events (serve_start,
                         serve_swap, serve_end with a full counter and
                         histogram snapshot) as JSONL; render with
                         `cluseq trace-summary PATH`

  Any of --metrics-addr / --slow-log / --trace enables request tracing:
  every accepted request gets an id and a seven-stage timeline (accept,
  decode, queue wait, batch formation, scan, encode, write-back). With
  none of them the serve path is entirely uninstrumented.

  The daemon answers a length-prefixed binary protocol (ASSIGN, SCORE,
  ANOMALY, INFO, SWAP, SHUTDOWN) and speaks just enough HTTP/1.1 on the
  same port for `curl`: GET /info /metrics /healthz /readyz, POST
  /assign /score /anomaly (body = sequence, either symbol ids `0 1 0 1`
  or characters `abab`; /anomaly takes ?threshold=LN_T), POST /swap
  (body = model path). SIGHUP atomically reloads the model file in
  place: in-flight requests finish on the generation that scored them,
  none are dropped. SIGTERM drains gracefully: queued requests are
  answered, then the observability streams are flushed.

TOP OPTIONS:
  cluseq top [ADDR]      live dashboard over a serve daemon's /metrics
                         (default 127.0.0.1:7878): qps, in-flight, queue
                         depth, per-opcode p50/p95/p99/p999, per-stage
                         means, generation, RSS
  --once                 print one frame (two scrapes 250 ms apart) and
                         exit — for scripts and CI
  --interval-ms MS       live refresh interval (default 2000)

CLUSTERING OPTIONS:
  --initial-clusters K   initial cluster count (default 1)
  --significance C       significance threshold c (default 30)
  --threshold T          initial similarity threshold t (default 1.0005)
  --no-adjust            freeze t at its initial value
  --max-depth L          PST context bound (default 12)
  --pst-bytes BYTES      per-cluster PST memory budget (default 5 MiB)
  --order fixed|random|cluster   examination order (default fixed)
  --scan-mode incremental|snapshot   re-clustering scan variant: the
                         paper's immediate model updates, or parallel
                         snapshot scoring with a sequential absorb phase
                         (default incremental)
  --scan-kernel interpreted|compiled|batched|quantized
                         similarity-scan implementation: walk the suffix
                         tree per symbol; compile each cluster model into
                         a flat transition-table automaton with
                         precomputed log-ratio tables and threshold
                         early-exit; scan batches of sequences
                         interleaved through the compiled tables; or scan
                         i16 fixed-point tables — interpreted, compiled,
                         and batched are bit-identical, quantized is
                         deterministic within a documented error bound
                         (default compiled)
  --threads N            worker threads for the scoring passes; results
                         are identical for any value (default 1)
  --store memory|file    corpus access: load the whole file into RAM, or
                         stream a CSEQ binary out of core through its
                         .csix offset index with a bounded per-worker
                         window (default memory; file needs a binary
                         input, e.g. from `generate --format bin`) — the
                         clustering is byte-identical either way
  --scan-shard N         snapshot-scan shard size: score and absorb N
                         sequences at a time so per-scan buffers stay
                         bounded by the shard, not the corpus; results
                         are byte-identical for any value (requires
                         --scan-mode snapshot, incompatible with
                         --incremental)
  --model-cache-mb MB    build per-cluster scan automata lazily and keep
                         at most MB megabytes of them, evicting least
                         recently used (default: keep all models hot)
  --incremental          incremental iteration engine: cache (sequence,
                         cluster) similarities across iterations, rescore
                         only against clusters whose model changed, and
                         write checkpoints as deltas against the previous
                         one; the clustering is byte-identical to a full
                         rescore every iteration (default off)
  --seed S               RNG seed (default fixed)
  --max-iterations N     iteration cap (default 50)
  --checkpoint-dir DIR   write crash-recovery checkpoints to DIR, one per
                         cadence boundary (atomic temp+fsync+rename files
                         named cluseq-NNNNNN.ckpt; a final checkpoint is
                         always written at the fixpoint)
  --checkpoint-every N   checkpoint cadence in iterations (default 1;
                         needs --checkpoint-dir)
  --resume [PATH]        resume from the newest checkpoint in
                         --checkpoint-dir — or from PATH exactly — instead
                         of starting over; the finished run is bit-identical
                         to an uninterrupted one (the bare flag starts fresh
                         when the directory is empty, so a crash-restart
                         loop can always pass --resume)
  --verbose              print per-iteration progress while clustering
  --report [PATH]        record per-iteration telemetry (phase timings,
                         cluster lifecycle, similarity histogram, threshold
                         trajectory, PST sizes), print the iteration table,
                         and write the report to PATH (default
                         results/reports/run-report.json)
  --report-format json|text   report file format (default json)
  --trace PATH           append a live JSONL trace event stream to PATH
                         (crash-safe: fsynced every iteration before any
                         checkpoint write; with --resume, pass the same
                         PATH and the stream continues in place — render
                         it any time with `cluseq trace-summary PATH`)
  --metrics-addr ADDR    serve Prometheus text-format metrics on ADDR
                         while clustering (e.g. 127.0.0.1:9184, or port 0
                         for an ephemeral port; the bound address is
                         printed on startup)

FILE FORMATS: text = one sequence per line, one character per symbol, an
optional `label<TAB>` prefix carrying ground truth (`-` marks a known
outlier); bin = the CSDB binary format (any alphabet, much faster to
load), written as CSEQ v2 with a `.csix` sidecar offset index so it can
be clustered out of core with `--store file` — `generate --format bin
--kind synthetic` streams the corpus straight to disk without ever
holding it in RAM. Input files are detected by their magic bytes.
";

fn main() -> ExitCode {
    let args = Args::parse(std::env::args().skip(1));
    match args.command.as_deref() {
        Some("generate") => generate(&args),
        Some("cluster") => cluster(&args, false),
        Some("evaluate") => cluster(&args, true),
        Some("classify") => classify(&args),
        Some("inspect") => inspect(&args),
        Some("serve") => serve(&args),
        Some("top") => top::run(&args),
        Some("trace-summary") => trace_summary(&args),
        Some("help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown subcommand {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn synthetic_spec(args: &Args) -> SyntheticSpec {
    SyntheticSpec {
        sequences: args.get("sequences", 500),
        clusters: args.get("clusters", 5),
        avg_len: args.get("avg-len", 150),
        // Default fits the single-character file encoding (max 62).
        alphabet: args.get("alphabet", 60),
        outlier_fraction: args.get("outliers", 0.05),
        seed: args.get("seed", 42),
    }
}

fn generate(args: &Args) -> ExitCode {
    let kind = args.get_str("kind").unwrap_or("synthetic");
    if args.get_str("format") == Some("bin") {
        return generate_bin(args, kind);
    }
    let db = match kind {
        "synthetic" => synthetic_spec(args).generate(),
        "protein" => ProteinFamilySpec {
            families: args.get("clusters", 10),
            size_scale: args.get("scale", 0.05),
            seed: args.get("seed", 2003),
            ..Default::default()
        }
        .generate(),
        "language" => LanguageSpec {
            sentences_per_language: args.get("sequences", 600) / 3,
            noise_sentences: args.get("noise", 100),
            words_per_sentence: (20, 40),
            seed: args.get("seed", 2002),
        }
        .generate(),
        other => {
            eprintln!("error: unknown --kind {other:?} (synthetic|protein|language)");
            return ExitCode::from(2);
        }
    };

    // Symbols must be single characters for the lines codec; synthetic
    // alphabets use numeric names, so re-encode them as alphanumerics.
    let db = match single_char_recode(&db) {
        Some(db) => db,
        None => {
            eprintln!(
                "error: alphabet of {} symbols cannot be written as one \
                 character per symbol (max 62); use --format bin",
                db.alphabet().len()
            );
            return ExitCode::from(2);
        }
    };
    let text = codec::encode_lines(&db);
    match args.get_str("out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "wrote {} sequences ({} classes) to {path}",
                db.len(),
                db.class_count()
            );
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

/// `generate --format bin`: writes CSEQ v2 with its `.csix` sidecar
/// offset index. Synthetic corpora stream one sequence at a time, so
/// `--sequences 10000000` never materializes the database in RAM; the
/// protein and language corpora are small and fixed-shape, so they are
/// built resident and written indexed.
fn generate_bin(args: &Args, kind: &str) -> ExitCode {
    let Some(path) = args.get_str("out") else {
        eprintln!("error: --format bin requires --out FILE");
        return ExitCode::from(2);
    };
    let written = match kind {
        "synthetic" => synthetic_spec(args).generate_streamed(path),
        "protein" => cluseq_seq::store::write_indexed(
            &ProteinFamilySpec {
                families: args.get("clusters", 10),
                size_scale: args.get("scale", 0.05),
                seed: args.get("seed", 2003),
                ..Default::default()
            }
            .generate(),
            path,
        ),
        "language" => cluseq_seq::store::write_indexed(
            &LanguageSpec {
                sentences_per_language: args.get("sequences", 600) / 3,
                noise_sentences: args.get("noise", 100),
                words_per_sentence: (20, 40),
                seed: args.get("seed", 2002),
            }
            .generate(),
            path,
        ),
        other => {
            eprintln!("error: unknown --kind {other:?} (synthetic|protein|language)");
            return ExitCode::from(2);
        }
    };
    match written {
        Ok(n) => {
            eprintln!("wrote {n} sequences to {path} (CSEQ v2 + {path}.csix index)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: writing {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Rewrites a database onto a single-character alphabet (a–z, A–Z, 0–9)
/// so the lines codec round-trips. Returns `None` when the alphabet is too
/// large. Databases already using single-character names pass through.
fn single_char_recode(db: &SequenceDatabase) -> Option<SequenceDatabase> {
    use cluseq_seq::{Alphabet, Sequence};
    let n = db.alphabet().len();
    if db
        .alphabet()
        .symbols()
        .all(|s| db.alphabet().name(s).chars().count() == 1)
    {
        return Some(db.clone());
    }
    const CHARS: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
    if n > CHARS.chars().count() {
        return None;
    }
    let alphabet = Alphabet::from_chars(CHARS.chars().take(n));
    let mut out = SequenceDatabase::new(alphabet);
    for (_, seq, label) in db.iter() {
        // Symbol ids are preserved; only names change.
        out.push_labeled(Sequence::new(seq.iter().collect()), label);
    }
    Some(out)
}

fn params_from(args: &Args) -> CluseqParams {
    let mut p = CluseqParams::default()
        .with_initial_clusters(args.get("initial-clusters", 1))
        .with_significance(args.get("significance", 30))
        .with_initial_threshold(args.get("threshold", 1.0005))
        .with_max_depth(args.get("max-depth", 12))
        .with_max_pst_bytes(args.get("pst-bytes", 5 * 1024 * 1024))
        .with_seed(args.get("seed", 0xC105E9))
        .with_max_iterations(args.get("max-iterations", 50))
        .with_threads(args.get("threads", 1usize).max(1))
        .with_scan_mode(args.get("scan-mode", ScanMode::Incremental))
        .with_scan_kernel(args.get("scan-kernel", ScanKernel::Compiled));
    if args.has("no-adjust") {
        p = p.with_threshold_adjustment(false);
    }
    if args.has("incremental") {
        p = p.with_incremental(true);
    }
    if args.get_str("scan-shard").is_some() {
        p = p.with_scan_shard(args.get("scan-shard", 1usize).max(1));
    }
    if args.get_str("model-cache-mb").is_some() {
        p = p.with_model_cache_mb(args.get("model-cache-mb", 0usize));
    }
    p = p.with_order(match args.get_str("order").unwrap_or("fixed") {
        "random" => ExaminationOrder::Random,
        "cluster" => ExaminationOrder::ClusterBased,
        _ => ExaminationOrder::Fixed,
    });
    if let Some(dir) = args.get_str("checkpoint-dir") {
        p = p.with_checkpoints(dir, args.get("checkpoint-every", 1usize));
    }
    p
}

fn load(args: &Args) -> Result<SequenceDatabase, ExitCode> {
    let Some(path) = args.positional.first() else {
        eprintln!("error: missing input file\n\n{USAGE}");
        return Err(ExitCode::from(2));
    };
    load_db_file(path).map_err(|e| {
        eprintln!("error: {e}");
        ExitCode::FAILURE
    })
}

/// The corpus behind `cluster`/`evaluate`: owned either way, scanned
/// through [`SequenceStore`] either way.
enum Corpus {
    Memory(SequenceDatabase),
    File(FileStore),
}

impl Corpus {
    fn store(&self) -> &dyn SequenceStore {
        match self {
            Corpus::Memory(db) => db,
            Corpus::File(fs) => fs,
        }
    }
}

/// Opens the input file under `--store`: fully resident (either format),
/// or out of core through the offset index (CSEQ binaries only).
fn load_corpus(args: &Args) -> Result<Corpus, ExitCode> {
    match args.get("store", StoreKind::Memory) {
        StoreKind::Memory => load(args).map(Corpus::Memory),
        StoreKind::File => {
            let Some(path) = args.positional.first() else {
                eprintln!("error: missing input file\n\n{USAGE}");
                return Err(ExitCode::from(2));
            };
            FileStore::open(path).map(Corpus::File).map_err(|e| {
                eprintln!(
                    "error: opening {path} out of core: {e} (--store file needs \
                     a CSEQ binary; write one with `generate --format bin`)"
                );
                ExitCode::FAILURE
            })
        }
    }
}

/// Reads a sequence database from `path`, sniffing CSDB binary vs. the
/// lines text format by magic bytes.
fn load_db_file(path: &str) -> Result<SequenceDatabase, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    if bytes.starts_with(b"CSDB") {
        return cluseq_seq::binio::decode(&mut bytes.as_slice())
            .map_err(|e| format!("parsing {path}: {e}"));
    }
    let text = String::from_utf8(bytes)
        .map_err(|e| format!("{path} is neither CSDB nor utf-8 text: {e}"))?;
    codec::decode_lines(&text).map_err(|e| format!("parsing {path}: {e}"))
}

/// The CLI's telemetry sink: accumulates a [`RunReport`] for `--report`
/// and prints the `--verbose` live log from the same event stream.
/// Disabled (zero record-assembly cost) when neither flag is set.
struct CliObserver {
    report: RunReport,
    collect: bool,
    verbose: bool,
}

impl RunObserver for CliObserver {
    fn enabled(&self) -> bool {
        self.collect || self.verbose
    }

    fn on_run_start(&mut self, ctx: &RunContext) {
        self.report.on_run_start(ctx);
    }

    fn on_iteration(&mut self, record: &IterationRecord) {
        if self.verbose {
            let stats = record.stats();
            eprintln!(
                "iter {:>3}: +{} new, -{} consolidated -> {} clusters, {} changes, ln t = {:.2}",
                stats.iteration,
                stats.new_clusters,
                stats.removed_clusters,
                stats.clusters_at_end,
                stats.membership_changes,
                stats.log_t,
            );
        }
        if self.collect {
            self.report.on_iteration(record);
        }
    }

    fn on_checkpoint(&mut self, event: &CheckpointEvent) {
        if self.verbose {
            match &event.error {
                Some(e) => eprintln!("checkpoint after iter {} failed: {e}", event.completed),
                None => eprintln!(
                    "checkpoint after iter {} -> {} ({} bytes)",
                    event.completed, event.path, event.bytes
                ),
            }
        }
        if self.collect {
            self.report.on_checkpoint(event);
        }
    }

    fn on_resume(&mut self, info: &ResumeInfo) {
        if self.verbose {
            eprintln!(
                "resuming from checkpoint (v{}) after {} completed iterations",
                info.version, info.completed
            );
        }
        if self.collect {
            self.report.on_resume(info);
        }
    }

    fn on_run_end(&mut self, summary: &RunSummary) {
        self.report.on_run_end(summary);
    }
}

/// Writes the run report where `--report` asked for it (default:
/// `results/reports/run-report.<ext>`), creating the directory if needed.
fn write_report(args: &Args, report: &RunReport) -> Result<(), ExitCode> {
    let format = args.get_str("report-format").unwrap_or("json");
    let (content, default_name) = match format {
        "json" => (report.to_json(), "results/reports/run-report.json"),
        "text" => (report.render_table(), "results/reports/run-report.txt"),
        other => {
            eprintln!("error: unknown --report-format {other:?} (json|text)");
            return Err(ExitCode::from(2));
        }
    };
    let path = args.get_str("report").unwrap_or(default_name);
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: creating {}: {e}", dir.display());
                return Err(ExitCode::FAILURE);
            }
        }
    }
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("error: writing {path}: {e}");
        return Err(ExitCode::FAILURE);
    }
    eprintln!("run report ({format}) written to {path}");
    Ok(())
}

fn cluster(args: &Args, evaluate: bool) -> ExitCode {
    let corpus = match load_corpus(args) {
        Ok(corpus) => corpus,
        Err(code) => return code,
    };
    let store = corpus.store();
    let params = params_from(args);
    // Surface parameter conflicts as CLI errors before the engine's
    // validation would panic on them.
    if params.scan_shard.is_some() && params.scan_mode != ScanMode::Snapshot {
        eprintln!("error: --scan-shard requires --scan-mode snapshot");
        return ExitCode::from(2);
    }
    if params.scan_shard.is_some() && params.incremental {
        eprintln!("error: --scan-shard is incompatible with --incremental");
        return ExitCode::from(2);
    }
    // `--report PATH` parses as an option, bare `--report` as a switch;
    // either spelling turns collection on.
    let want_report = args.has("report") || args.get_str("report").is_some();
    let mut observer = CliObserver {
        report: RunReport::new(),
        collect: want_report,
        verbose: args.has("verbose"),
    };
    // Tracing is operational, not algorithmic: the session lives outside
    // CluseqParams and never enters a checkpoint.
    let trace_config = TraceConfig {
        jsonl: args.get_str("trace").map(std::path::PathBuf::from),
        metrics_addr: args.get_str("metrics-addr").map(str::to_owned),
    };
    let trace_session = if trace_config.jsonl.is_none() && trace_config.metrics_addr.is_none() {
        None
    } else {
        match TraceSession::start(&trace_config) {
            Ok(session) => Some(session),
            Err(e) => {
                eprintln!("error: starting trace session: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    if let Some(addr) = trace_session.as_ref().and_then(|s| s.metrics_addr()) {
        eprintln!("metrics exporter listening on http://{addr}/metrics");
    }
    // `--resume` restarts from the newest checkpoint in --checkpoint-dir
    // (or fresh when none exists yet, so a crash-restart loop can pass the
    // flag unconditionally); `--resume PATH` loads that specific file. The
    // explicit form must be handled: the argument parser stores `--resume
    // foo.ckpt` as an option, not a switch, and silently ignoring the path
    // would run fresh with default parameters instead of resuming.
    let resume_path = if let Some(path) = args.get_str("resume") {
        Some(std::path::PathBuf::from(path))
    } else if args.has("resume") {
        let Some(policy) = params.checkpoint.clone() else {
            eprintln!("error: --resume requires --checkpoint-dir (or an explicit --resume PATH)");
            return ExitCode::from(2);
        };
        match Checkpoint::latest_in(&policy.dir) {
            Ok(found) => {
                if found.is_none() {
                    eprintln!(
                        "no checkpoint found in {}; starting fresh",
                        policy.dir.display()
                    );
                }
                found
            }
            Err(e) => {
                eprintln!("error: scanning {}: {e}", policy.dir.display());
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let resume_from = match resume_path {
        Some(path) => match Checkpoint::load_path(&path) {
            Ok(ckpt) => {
                if let Err(mismatch) = ckpt.verify_database(store) {
                    eprintln!("error: {}: {mismatch}", path.display());
                    return ExitCode::FAILURE;
                }
                if ckpt.store != store.kind() {
                    eprintln!(
                        "note: checkpoint was taken with --store {}, resuming with \
                         --store {} (the run stays bit-identical)",
                        ckpt.store,
                        store.kind()
                    );
                }
                eprintln!(
                    "resuming from {} ({} iterations completed)",
                    path.display(),
                    ckpt.completed
                );
                Some(ckpt)
            }
            Err(e) => {
                eprintln!("error: loading checkpoint {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let trace = trace_session.as_ref();
    let (outcome, elapsed) = Stopwatch::time(|| match resume_from {
        Some(ckpt) => Cluseq::resume_traced(ckpt, store, &mut observer, trace),
        None => Cluseq::new(params).run_traced(store, &mut observer, trace),
    });

    if observer.collect {
        eprint!("{}", observer.report.render_table());
        if let Err(code) = write_report(args, &observer.report) {
            return code;
        }
    }

    eprintln!(
        "{} sequences -> {} clusters, {} outliers, {} iterations, final t = {:.3}, {elapsed:?}",
        store.len(),
        outcome.cluster_count(),
        outcome.outliers.len(),
        outcome.iterations,
        outcome.final_t(),
    );

    if evaluate {
        let labels: Vec<Option<u32>> = (0..store.len()).map(|i| store.label(i)).collect();
        if labels.iter().all(|l| l.is_none()) {
            eprintln!("error: evaluate requires a labeled input file");
            return ExitCode::from(2);
        }
        let c = Confusion::new(
            &labels,
            &outcome.membership_lists(),
            MatchStrategy::Hungarian,
        );
        println!("accuracy\t{:.4}", c.accuracy());
        println!("precision\t{:.4}", c.macro_precision());
        println!("recall\t{:.4}", c.macro_recall());
        println!("clusters\t{}", outcome.cluster_count());
        println!("final_t\t{:.4}", outcome.final_t());
        for m in c.class_metrics() {
            println!(
                "class\t{}\tsize\t{}\tprecision\t{:.4}\trecall\t{:.4}",
                m.class, m.size, m.precision, m.recall
            );
        }
    } else {
        if let Some(path) = args.get_str("save-model") {
            let model = SavedModel::from_outcome(&outcome);
            match std::fs::File::create(path) {
                Ok(mut f) => {
                    if let Err(e) = model.save(&mut f) {
                        eprintln!("error: writing model {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!(
                        "model with {} clusters saved to {path}",
                        model.cluster_count()
                    );
                }
                Err(e) => {
                    eprintln!("error: creating {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        // One line per sequence: id, best cluster (or -), all memberships.
        for i in 0..store.len() {
            let best = outcome.best_cluster[i]
                .map(|b| b.to_string())
                .unwrap_or_else(|| "-".into());
            let homes: Vec<String> = outcome
                .clusters
                .iter()
                .enumerate()
                .filter(|(_, c)| c.contains(i))
                .map(|(k, _)| k.to_string())
                .collect();
            println!("{i}\t{best}\t{}", homes.join(","));
        }
    }
    ExitCode::SUCCESS
}

fn serve(args: &Args) -> ExitCode {
    use cluseq_core::serve::obs::{ObsConfig, ServeObs};
    use cluseq_core::serve::{model::ServeModel, ServeConfig, Server};

    let Some(model_path) = args.get_str("model") else {
        eprintln!("error: serve requires --model FILE\n\n{USAGE}");
        return ExitCode::from(2);
    };
    // The training corpus (only needed for CCKP models) routes through
    // SequenceStore: `--store file` keeps the daemon's footprint bounded
    // by the model, not the corpus.
    let db: Option<Box<dyn SequenceStore + Send>> = match args.get_str("data") {
        Some(path) => match args.get("store", StoreKind::Memory) {
            StoreKind::Memory => match load_db_file(path) {
                Ok(db) => Some(Box::new(db)),
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            },
            StoreKind::File => match FileStore::open(path) {
                Ok(fs) => Some(Box::new(fs)),
                Err(e) => {
                    eprintln!(
                        "error: opening {path} out of core: {e} (--store file \
                         needs a CSEQ binary; write one with `generate --format bin`)"
                    );
                    return ExitCode::FAILURE;
                }
            },
        },
        None => None,
    };
    let config = ServeConfig {
        addr: args.get_str("addr").unwrap_or("127.0.0.1:7878").to_owned(),
        threads: args.get("threads", 1usize).max(1),
        max_batch: args.get("max-batch", 64usize).max(1),
        kernel: args.get("scan-kernel", ScanKernel::Compiled),
        frame_timeout: std::time::Duration::from_millis(args.get("frame-timeout-ms", 5000u64)),
        watch_sighup: true,
    };
    let model = match ServeModel::load(
        std::path::Path::new(model_path),
        db.as_deref().map(|d| d as &dyn SequenceStore),
        config.kernel,
        1,
    ) {
        Ok(model) => model,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Any observability flag turns the whole bundle on: the registry is
    // shared, so counters, the exporter, the slow log, and the serve
    // trace all read the same numbers. No flag → no bundle → the serve
    // path pays nothing, not even clock reads.
    let obs_config = ObsConfig {
        slow_log: args.get_str("slow-log").map(std::path::PathBuf::from),
        slow_threshold: std::time::Duration::from_millis(args.get("slow-threshold-ms", 100u64)),
        trace_jsonl: args.get_str("trace").map(std::path::PathBuf::from),
    };
    let want_obs = args.get_str("metrics-addr").is_some()
        || obs_config.slow_log.is_some()
        || obs_config.trace_jsonl.is_some();
    // The trace session owns the standalone /metrics exporter; the serve
    // threads hold their own Arc to the registry, so it must outlive the
    // handle.
    let trace_session = if want_obs {
        let config = TraceConfig {
            jsonl: None,
            metrics_addr: args.get_str("metrics-addr").map(str::to_owned),
        };
        match TraceSession::start(&config) {
            Ok(session) => Some(session),
            Err(e) => {
                eprintln!("error: starting metrics exporter: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    if let Some(addr) = trace_session.as_ref().and_then(|s| s.metrics_addr()) {
        eprintln!("metrics exporter listening on http://{addr}/metrics");
    }
    let obs = match &trace_session {
        Some(session) => match ServeObs::new(session.shared_arc(), &obs_config) {
            Ok(obs) => Some(std::sync::Arc::new(obs)),
            Err(e) => {
                eprintln!("error: opening observability files: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let clusters = model.saved.cluster_count();
    let handle = match Server::start(model, db, &config, obs) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: binding {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "serving {clusters} clusters (generation {}) on {} — \
         binary protocol + HTTP; SIGHUP reloads {model_path}; \
         SHUTDOWN frame stops",
        handle.generation(),
        handle.addr()
    );
    handle.wait();
    eprintln!("serve: drained and stopped");
    ExitCode::SUCCESS
}

fn trace_summary(args: &Args) -> ExitCode {
    let Some(path) = args.positional.first() else {
        eprintln!("error: missing trace file\n\n{USAGE}");
        return ExitCode::from(2);
    };
    match sink::read_trace(std::path::Path::new(path)) {
        Ok(replay) => {
            print!("{}", summary::render_summary(&replay));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: reading trace {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn classify(args: &Args) -> ExitCode {
    let Some(model_path) = args.get_str("model") else {
        eprintln!("error: classify requires --model FILE\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let model = match std::fs::File::open(model_path) {
        Ok(mut f) => match SavedModel::load(&mut f) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("error: loading model {model_path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("error: opening {model_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let db = match load(args) {
        Ok(db) => db,
        Err(code) => return code,
    };
    eprintln!(
        "classifying {} sequences against {} clusters (ln t = {:.2})",
        db.len(),
        model.cluster_count(),
        model.log_t
    );
    for (i, seq, _) in db.iter() {
        let joined = model.assign(seq.symbols());
        match joined.first() {
            Some(&(best, sim)) => {
                let all: Vec<String> = joined.iter().map(|(k, _)| k.to_string()).collect();
                println!("{i}\t{best}\t{sim:.2}\t{}", all.join(","));
            }
            None => println!("{i}\t-\t-\t"),
        }
    }
    ExitCode::SUCCESS
}

fn inspect(args: &Args) -> ExitCode {
    let Some(model_path) = args.get_str("model") else {
        eprintln!("error: inspect requires --model FILE\n\n{USAGE}");
        return ExitCode::from(2);
    };
    let model = match std::fs::File::open(model_path) {
        Ok(mut f) => match SavedModel::load(&mut f) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("error: loading model {model_path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("error: opening {model_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "model: {} clusters, decision threshold ln t = {:.3}",
        model.cluster_count(),
        model.log_t
    );
    // Model files carry symbol ids, not names; render with synthetic names.
    let n_sym = model.background.alphabet_size();
    let alphabet = cluseq_seq::Alphabet::synthetic(n_sym);
    let max_nodes: usize = args.get("max-nodes", 20);
    for (k, cluster) in model.clusters.iter().enumerate() {
        let stats = cluster.pst.stats();
        println!(
            "\ncluster {k} (id {}): {} nodes ({} significant), depth {}, {} bytes, count {}",
            cluster.id,
            stats.nodes,
            stats.significant_nodes,
            stats.max_depth,
            stats.bytes,
            stats.total_count
        );
        let options = cluseq_pst::RenderOptions {
            max_nodes,
            max_depth: 2,
            min_prob: 0.05,
            ..Default::default()
        };
        print!("{}", cluster.pst.render(&alphabet, options));
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_flags_reach_params() {
        let args = Args::parse(
            "cluster data.txt --threads 4 --scan-mode snapshot --significance 5"
                .split_whitespace()
                .map(str::to_owned),
        );
        let p = params_from(&args);
        assert_eq!(p.threads, 4);
        assert_eq!(p.scan_mode, ScanMode::Snapshot);
        assert_eq!(p.significance, 5);
    }

    #[test]
    fn scan_mode_defaults_to_incremental() {
        let args = Args::parse(["cluster".to_owned(), "data.txt".to_owned()]);
        let p = params_from(&args);
        assert_eq!(p.scan_mode, ScanMode::Incremental);
        assert_eq!(p.threads, 1);
    }

    #[test]
    fn scan_kernel_flag_reaches_params_and_defaults_to_compiled() {
        let args = Args::parse(
            "cluster data.txt --scan-kernel interpreted"
                .split_whitespace()
                .map(str::to_owned),
        );
        assert_eq!(params_from(&args).scan_kernel, ScanKernel::Interpreted);
        let args = Args::parse(["cluster".to_owned(), "data.txt".to_owned()]);
        assert_eq!(params_from(&args).scan_kernel, ScanKernel::Compiled);
        for kernel in ScanKernel::ALL {
            let args = Args::parse(
                format!("cluster data.txt --scan-kernel {kernel}")
                    .split_whitespace()
                    .map(str::to_owned),
            );
            assert_eq!(params_from(&args).scan_kernel, kernel);
        }
    }

    #[test]
    fn incremental_flag_reaches_params_and_defaults_off() {
        let args = Args::parse(
            "cluster data.txt --incremental"
                .split_whitespace()
                .map(str::to_owned),
        );
        assert!(params_from(&args).incremental);
        let args = Args::parse(["cluster".to_owned(), "data.txt".to_owned()]);
        assert!(!params_from(&args).incremental);
    }

    #[test]
    fn out_of_core_flags_reach_params_and_default_off() {
        let args = Args::parse(
            "cluster data.cseq --store file --scan-shard 4096 --model-cache-mb 64"
                .split_whitespace()
                .map(str::to_owned),
        );
        assert_eq!(args.get("store", StoreKind::Memory), StoreKind::File);
        let p = params_from(&args);
        assert_eq!(p.scan_shard, Some(4096));
        assert_eq!(p.model_cache_mb, Some(64));

        let args = Args::parse(["cluster".to_owned(), "data.txt".to_owned()]);
        assert_eq!(args.get("store", StoreKind::Memory), StoreKind::Memory);
        let p = params_from(&args);
        assert_eq!(p.scan_shard, None);
        assert_eq!(p.model_cache_mb, None);
    }

    #[test]
    fn unknown_store_kind_error_lists_the_valid_set() {
        let args = Args::parse(
            "cluster data.txt --store tape"
                .split_whitespace()
                .map(str::to_owned),
        );
        let err = args.try_get("store", StoreKind::Memory).unwrap_err();
        assert!(err.contains("memory") && err.contains("file"), "{err}");
    }

    #[test]
    fn checkpoint_flags_reach_params() {
        let args = Args::parse(
            "cluster data.txt --checkpoint-dir ckpts --checkpoint-every 3"
                .split_whitespace()
                .map(str::to_owned),
        );
        let p = params_from(&args);
        let policy = p.checkpoint.expect("policy should be configured");
        assert_eq!(policy.dir, std::path::PathBuf::from("ckpts"));
        assert_eq!(policy.every, 3);
    }

    #[test]
    fn checkpoint_cadence_defaults_to_every_iteration() {
        let args = Args::parse(
            "cluster data.txt --checkpoint-dir ckpts"
                .split_whitespace()
                .map(str::to_owned),
        );
        let p = params_from(&args);
        assert_eq!(p.checkpoint.expect("policy").every, 1);
    }

    #[test]
    fn checkpointing_is_off_by_default() {
        let args = Args::parse(["cluster".to_owned(), "data.txt".to_owned()]);
        assert!(params_from(&args).checkpoint.is_none());
    }
}
