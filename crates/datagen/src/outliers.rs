//! Noise-sequence generation and injection.
//!
//! The paper's robustness study varies the fraction of outliers from 1% to
//! 20% and reports that CLUSEQ's accuracy is immune to the increase. Two
//! noise flavours are provided: memoryless uniform sequences, and
//! *shuffles* of real sequences — the harder case, since a shuffle keeps
//! the symbol composition and defeats any composition-only (q-gram-like)
//! detector while destroying the sequential structure CLUSEQ keys on.

use rand::distributions::{Distribution, Uniform};
use rand::seq::SliceRandom;
use rand::Rng;

use cluseq_seq::{Sequence, SequenceDatabase, Symbol};

/// A uniform memoryless sequence of length `len` over `alphabet` symbols.
pub fn random_sequence(alphabet: usize, len: usize, rng: &mut impl Rng) -> Sequence {
    let dist = Uniform::new(0, alphabet as u16);
    Sequence::new((0..len).map(|_| Symbol(dist.sample(rng))).collect())
}

/// A random permutation of an existing sequence's symbols.
pub fn shuffled_sequence(seq: &Sequence, rng: &mut impl Rng) -> Sequence {
    let mut symbols: Vec<Symbol> = seq.iter().collect();
    symbols.shuffle(rng);
    Sequence::new(symbols)
}

/// Appends `count` unlabeled noise sequences to `db`.
///
/// When `shuffle_existing` is set (and the database is non-empty) each
/// outlier is a shuffle of a randomly chosen existing sequence; otherwise
/// outliers are uniform random sequences of length `avg_len`.
pub fn inject_outliers(
    db: &mut SequenceDatabase,
    count: usize,
    avg_len: usize,
    shuffle_existing: bool,
    rng: &mut impl Rng,
) {
    let existing = db.len();
    for _ in 0..count {
        let seq = if shuffle_existing && existing > 0 {
            let pick = rng.gen_range(0..existing);
            shuffled_sequence(db.sequence(pick), rng)
        } else {
            random_sequence(db.alphabet().len().max(2), avg_len.max(1), rng)
        };
        db.push_labeled(seq, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_sequence_has_requested_length_and_alphabet() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = random_sequence(5, 100, &mut rng);
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|sym| sym.index() < 5));
    }

    #[test]
    fn shuffle_preserves_composition() {
        let mut rng = StdRng::seed_from_u64(2);
        let original = random_sequence(4, 60, &mut rng);
        let shuffled = shuffled_sequence(&original, &mut rng);
        assert_eq!(shuffled.len(), original.len());
        let count = |s: &Sequence| {
            let mut c = [0usize; 4];
            for sym in s.iter() {
                c[sym.index()] += 1;
            }
            c
        };
        assert_eq!(count(&original), count(&shuffled));
        assert_ne!(
            original, shuffled,
            "a 60-symbol shuffle virtually never fixes"
        );
    }

    #[test]
    fn inject_adds_unlabeled_sequences() {
        let mut db = SequenceDatabase::from_strs(["abab", "baba"]);
        let mut rng = StdRng::seed_from_u64(3);
        inject_outliers(&mut db, 5, 10, false, &mut rng);
        assert_eq!(db.len(), 7);
        assert_eq!(db.labels().iter().filter(|l| l.is_none()).count(), 7);
        // original two were unlabeled too in this fixture; check the tail
        for i in 2..7 {
            assert_eq!(db.label(i), None);
            assert_eq!(db.sequence(i).len(), 10);
        }
    }

    #[test]
    fn inject_shuffled_draws_from_existing() {
        let mut db = SequenceDatabase::from_strs(["aaaabbbb"]);
        let mut rng = StdRng::seed_from_u64(4);
        inject_outliers(&mut db, 3, 99, true, &mut rng);
        for i in 1..4 {
            // Shuffles of the one existing sequence: same length and
            // composition.
            assert_eq!(db.sequence(i).len(), 8);
        }
    }
}
