//! A SWISS-PROT stand-in: synthetic protein families.
//!
//! The paper clusters 8000 SWISS-PROT proteins from 30 biological families
//! (sizes 140–900). We cannot redistribute SWISS-PROT, so this module
//! generates families with the property CLUSEQ actually exploits:
//! *"protein sequences with similar biological functions would share some
//! common signature (e.g., conserved protein regions)"* (§1). Each family
//! is defined by
//!
//! * a handful of **conserved motifs** (family-specific segments, inserted
//!   with point mutations — the conserved regions), and
//! * a family-biased **residue composition** for the inter-motif
//!   background.
//!
//! Baselines see the same structure: edit distance can align motifs, HMMs
//! can learn the composition, q-grams pick up motif fragments — so the
//! comparison in Table 2 is exercised by the same signal the paper's real
//! data provides.

use rand::distributions::{Distribution, Uniform, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use cluseq_seq::{Alphabet, Sequence, SequenceDatabase, Symbol};

/// The Pfam-style names used for the 30 families. The first ten (with
/// their sizes in [`TABLE3_SIZES`]) are exactly the ones the paper's
/// Table 3 reports, in the paper's order.
pub const FAMILY_NAMES: [&str; 30] = [
    "ig",
    "pkinase",
    "globin",
    "7tm_1",
    "homeobox",
    "efhand",
    "RuBisCO_large",
    "gluts",
    "actin",
    "rrm",
    "lipocalin",
    "ras",
    "HLH",
    "cyclin",
    "lectin_c",
    "kazal",
    "sushi",
    "ank",
    "PH",
    "SH2",
    "SH3",
    "ww",
    "fn3",
    "EGF",
    "kringle",
    "thioredox",
    "trypsin",
    "tRNA-synt_1",
    "zf-C2H2",
    "cytochrome_b",
];

/// Family sizes from the paper's Table 3 (the ten reported families); the
/// remaining twenty are interpolated across the paper's stated 140–900
/// range.
pub const TABLE3_SIZES: [usize; 10] = [884, 725, 681, 515, 383, 320, 311, 144, 142, 141];

/// Specification of the synthetic protein database.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProteinFamilySpec {
    /// Number of families (paper: 30).
    pub families: usize,
    /// Global scale on family sizes: 1.0 reproduces the paper's ~8000
    /// sequences; the benches default to smaller scales.
    pub size_scale: f64,
    /// Motifs per family.
    pub motifs_per_family: usize,
    /// Motif length range (inclusive).
    pub motif_len: (usize, usize),
    /// Per-residue mutation probability when a motif is instantiated.
    pub mutation_rate: f64,
    /// Sequence length range (inclusive).
    pub seq_len: (usize, usize),
    /// When set, every family beyond the first also carries one motif
    /// borrowed from the previous family — mimicking conserved domains
    /// shared across related families, the main source of the paper's
    /// cross-family confusion (Table 2 tops out at ~82%, not ~100%).
    pub motif_sharing: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProteinFamilySpec {
    fn default() -> Self {
        Self {
            families: 30,
            size_scale: 0.1,
            motifs_per_family: 3,
            motif_len: (8, 14),
            mutation_rate: 0.12,
            seq_len: (150, 400),
            motif_sharing: true,
            seed: 2003,
        }
    }
}

impl ProteinFamilySpec {
    /// The member count of family `f` before scaling: Table 3 sizes for
    /// the first ten, interpolated 140–900 afterwards.
    pub fn family_size(&self, f: usize) -> usize {
        let raw = if f < TABLE3_SIZES.len() {
            TABLE3_SIZES[f]
        } else {
            // Deterministic spread over the paper's stated range.
            140 + (f * 37 * 101) % 761
        };
        ((raw as f64 * self.size_scale).round() as usize).max(2)
    }

    /// Generates the database. Labels are family indices in
    /// [`FAMILY_NAMES`] order.
    pub fn generate(&self) -> SequenceDatabase {
        assert!(self.families >= 1 && self.families <= FAMILY_NAMES.len());
        assert!(self.motif_len.0 >= 2 && self.motif_len.0 <= self.motif_len.1);
        assert!(
            self.seq_len.0 >= self.motif_len.1 * 2,
            "sequences must fit motifs"
        );
        let alphabet = Alphabet::amino_acids();
        let n_sym = alphabet.len();
        let mut db = SequenceDatabase::new(alphabet);
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut families: Vec<FamilyModel> = Vec::with_capacity(self.families);
        for f in 0..self.families {
            let mut family = FamilyModel::new(self, f, n_sym, &mut rng);
            if self.motif_sharing && f > 0 {
                // Borrow one conserved motif from the previous family.
                let borrowed = families[f - 1].motifs[0].clone();
                family.motifs.push(borrowed);
            }
            families.push(family);
        }
        for (f, family) in families.iter().enumerate() {
            for _ in 0..self.family_size(f) {
                let seq = family.sample(self, &mut rng);
                db.push_labeled(seq, Some(f as u32));
            }
        }
        db
    }
}

/// A single family's generative model.
struct FamilyModel {
    motifs: Vec<Vec<Symbol>>,
    /// Residue-composition weights for inter-motif background.
    composition: WeightedIndex<f64>,
}

impl FamilyModel {
    fn new(spec: &ProteinFamilySpec, _family: usize, n_sym: usize, rng: &mut StdRng) -> Self {
        let len_dist = Uniform::new_inclusive(spec.motif_len.0, spec.motif_len.1);
        let sym_dist = Uniform::new(0, n_sym as u16);
        let motifs = (0..spec.motifs_per_family)
            .map(|_| {
                let len = len_dist.sample(rng);
                (0..len).map(|_| Symbol(sym_dist.sample(rng))).collect()
            })
            .collect();
        // A mildly biased residue composition: real families lean toward
        // certain residues, but far from enough to separate families by
        // composition alone (the q-gram baseline would otherwise score
        // ~100% instead of the paper's 75%).
        let weights: Vec<f64> = (0..n_sym)
            .map(|_| if rng.gen::<f64>() < 0.3 { 1.8 } else { 1.0 })
            .collect();
        Self {
            motifs,
            composition: WeightedIndex::new(weights).expect("weights are positive"),
        }
    }

    fn sample(&self, spec: &ProteinFamilySpec, rng: &mut StdRng) -> Sequence {
        let len = Uniform::new_inclusive(spec.seq_len.0, spec.seq_len.1).sample(rng);
        let mut symbols: Vec<Symbol> = (0..len)
            .map(|_| Symbol(self.composition.sample(rng) as u16))
            .collect();

        // Instantiate every motif once at a random position (conserved
        // regions appear once per member; keeping them sparse stops
        // composition/bag-of-grams methods from scoring unrealistically
        // high). Overlaps just overwrite — harmless noise.
        for motif in &self.motifs {
            let pos = rng.gen_range(0..=len - motif.len());
            for (i, &m) in motif.iter().enumerate() {
                symbols[pos + i] = if rng.gen::<f64>() < spec.mutation_rate {
                    Symbol(rng.gen_range(0..20) as u16)
                } else {
                    m
                };
            }
        }
        Sequence::new(symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ProteinFamilySpec {
        ProteinFamilySpec {
            families: 4,
            size_scale: 0.02,
            seq_len: (100, 160),
            motif_sharing: false,
            // Near-clean motifs so gram-overlap assertions are stable.
            mutation_rate: 0.02,
            ..Default::default()
        }
    }

    #[test]
    fn generates_all_families_with_scaled_sizes() {
        let spec = small_spec();
        let db = spec.generate();
        assert_eq!(db.class_count(), 4);
        // Family 0 (ig, 884) at scale 0.02 → ~18 members.
        let f0 = db.labels().iter().filter(|l| **l == Some(0)).count();
        assert_eq!(f0, spec.family_size(0));
        assert!((15..=21).contains(&f0));
    }

    #[test]
    fn family_sizes_follow_table3_then_interpolate() {
        let spec = ProteinFamilySpec {
            size_scale: 1.0,
            ..Default::default()
        };
        assert_eq!(spec.family_size(0), 884);
        assert_eq!(spec.family_size(9), 141);
        for f in 10..30 {
            let s = spec.family_size(f);
            assert!((140..=901).contains(&s), "family {f} size {s}");
        }
    }

    #[test]
    fn sequences_use_the_amino_acid_alphabet() {
        let db = small_spec().generate();
        assert_eq!(db.alphabet().len(), 20);
        for (_, seq, _) in db.iter().take(5) {
            assert!(seq.iter().all(|s| s.index() < 20));
            assert!(seq.len() >= 100 && seq.len() <= 160);
        }
    }

    #[test]
    fn family_members_share_motifs() {
        let db = small_spec().generate();
        // Two members of family 0 share long segments (the motifs); a
        // member of family 1 shares far fewer.
        let members: Vec<usize> = db
            .iter()
            .filter(|(_, _, l)| *l == Some(0))
            .map(|(i, _, _)| i)
            .collect();
        let stranger = db.iter().find(|(_, _, l)| *l == Some(1)).unwrap().0;
        let grams = |i: usize| -> std::collections::HashSet<Vec<u16>> {
            db.sequence(i)
                .symbols()
                .windows(6)
                .map(|w| w.iter().map(|s| s.0).collect())
                .collect()
        };
        let same = grams(members[0]).intersection(&grams(members[1])).count();
        let cross = grams(members[0]).intersection(&grams(stranger)).count();
        assert!(
            same > cross,
            "same-family 6-gram overlap {same} vs cross-family {cross}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_spec().generate();
        let b = small_spec().generate();
        for i in 0..a.len() {
            assert_eq!(a.sequence(i), b.sequence(i));
        }
    }

    #[test]
    fn motif_sharing_links_adjacent_families() {
        // With sharing on, consecutive families have more cross-family
        // long-gram overlap than families two apart.
        let spec = ProteinFamilySpec {
            families: 3,
            size_scale: 0.03,
            seq_len: (150, 200),
            mutation_rate: 0.0, // clean motifs make the overlap deterministic
            ..Default::default()
        };
        assert!(spec.motif_sharing, "sharing is the default");
        let db = spec.generate();
        let member_of = |fam: u32| db.iter().find(|(_, _, l)| *l == Some(fam)).unwrap().0;
        let grams = |i: usize| -> std::collections::HashSet<Vec<u16>> {
            db.sequence(i)
                .symbols()
                .windows(8)
                .map(|w| w.iter().map(|s| s.0).collect())
                .collect()
        };
        let f0 = grams(member_of(0));
        let f1 = grams(member_of(1));
        let f2 = grams(member_of(2));
        let adjacent = f0.intersection(&f1).count();
        let distant = f0.intersection(&f2).count();
        assert!(
            adjacent > distant,
            "family 1 borrows a family-0 motif: adjacent {adjacent} vs distant {distant}"
        );
    }

    #[test]
    #[should_panic(expected = "fit motifs")]
    fn rejects_sequences_too_short_for_motifs() {
        ProteinFamilySpec {
            seq_len: (10, 20),
            ..Default::default()
        }
        .generate();
    }
}
