//! Synthetic workload generators for the CLUSEQ reproduction.
//!
//! The paper evaluates on data we cannot redistribute or re-scrape
//! (SWISS-PROT protein families; sentences scraped from news sites in
//! 2002), plus synthetic databases whose generator is described only as
//! *"sequences in a cluster are all generated according to the same
//! probabilistic suffix tree"*. This crate rebuilds all three kinds of
//! workload from scratch:
//!
//! * [`cluster_gen`] — the paper's synthetic generator: each planted
//!   cluster is a distinct variable-memory conditional model; sequences
//!   are sampled from their cluster's model (drives Figures 4–6,
//!   Tables 5–6);
//! * [`markov`] — explicit order-k Markov chains (tests and ablations);
//! * [`protein`] — a SWISS-PROT stand-in: motif-bearing families over the
//!   20-letter amino-acid alphabet (drives Tables 2–3);
//! * [`language`] — a stand-in for the English / romanized-Chinese /
//!   romanized-Japanese sentence corpora (drives Table 4);
//! * [`outliers`] — noise-sequence injection (outlier-robustness study).
//!
//! Every generator is deterministic given its seed.

pub mod cluster_gen;
pub mod language;
pub mod markov;
pub mod outliers;
pub mod protein;
pub mod weblog;

pub use cluster_gen::{ClusterModel, SyntheticSpec};
pub use language::{Language, LanguageSpec};
pub use markov::MarkovChain;
pub use outliers::inject_outliers;
pub use protein::{ProteinFamilySpec, FAMILY_NAMES};
pub use weblog::{Profile, WeblogSpec};
