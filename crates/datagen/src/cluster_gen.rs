//! The paper's synthetic cluster generator.
//!
//! §6.2: *"we utilize a synthetic data set that consists of 100,000
//! sequences … There are 100 distinct symbols and we embed 50 clusters.
//! Sequences in a cluster are all generated according to the same
//! probabilistic suffix tree."*
//!
//! Each planted cluster is a [`ClusterModel`]: a deterministic
//! variable-memory conditional model in which the next-symbol distribution
//! of any context is derived by hashing `(cluster key, last L symbols)`.
//! That realizes "a distinct PST per cluster" without materializing
//! exponential tables, scales to any alphabet, and keeps generation O(1)
//! per symbol. Distributions are *peaked*: a few preferred successors
//! carry most of the mass, so clusters have strong, learnable sequential
//! signatures while remaining stochastic.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use cluseq_seq::store::CseqWriter;
use cluseq_seq::{Alphabet, Sequence, SequenceDatabase, Symbol};

use crate::outliers::random_sequence;

/// A planted cluster's generative model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClusterModel {
    /// Alphabet size.
    pub alphabet: usize,
    /// Memory length: the next symbol depends on the last `order` symbols.
    pub order: usize,
    /// Number of preferred successors per context.
    pub peaks: usize,
    /// Total probability mass shared by the preferred successors
    /// (the rest is spread uniformly); higher = more separable clusters.
    pub peak_mass: f64,
    /// The cluster's identity — different keys give (almost surely)
    /// different conditional models.
    pub key: u64,
}

impl ClusterModel {
    /// Creates a model with the defaults used throughout the benches:
    /// order 1 (a peaked digraph structure — each cluster has its own
    /// characteristic symbol-transition graph), 3 preferred successors
    /// carrying 85% of the mass.
    ///
    /// Order 1 keeps the low-order conditional distributions sharply
    /// distinct between clusters, which is the short-memory signal CLUSEQ
    /// (and the Markov-flavoured baselines) learn from; higher orders make
    /// the marginals of short contexts nearly uniform and every method
    /// needs far more data per cluster.
    pub fn new(alphabet: usize, key: u64) -> Self {
        Self {
            alphabet,
            order: 1,
            peaks: 3,
            peak_mass: 0.85,
            key,
        }
    }

    /// Deterministic hash of the cluster key and a context window.
    fn context_hash(&self, context: &[Symbol]) -> u64 {
        let start = context.len().saturating_sub(self.order);
        let mut h = self.key ^ 0x9E37_79B9_7F4A_7C15;
        for &s in &context[start..] {
            h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(s.0 as u64 + 1);
            h ^= h >> 29;
        }
        h.wrapping_mul(0xBF58_476D_1CE4_E5B9)
    }

    /// The preferred successors of `context` (deterministic per context).
    fn preferred(&self, context: &[Symbol]) -> impl Iterator<Item = usize> + '_ {
        let h = self.context_hash(context);
        let n = self.alphabet as u64;
        // Distinct peak slots from one hash: stride through the alphabet
        // with a coprime-ish step so peaks don't collide for small n.
        let first = h % n;
        let step = 1 + (h >> 32) % (n - 1).max(1);
        (0..self.peaks.min(self.alphabet)).map(move |i| ((first + i as u64 * step) % n) as usize)
    }

    /// `P(next | context)` under this model.
    pub fn prob(&self, context: &[Symbol], next: Symbol) -> f64 {
        let peaks: Vec<usize> = self.preferred(context).collect();
        let k = peaks.len() as f64;
        let uniform_share = (1.0 - self.peak_mass) / self.alphabet as f64;
        if peaks.contains(&next.index()) {
            self.peak_mass / k + uniform_share
        } else {
            uniform_share
        }
    }

    /// Samples the next symbol.
    pub fn sample_next(&self, context: &[Symbol], rng: &mut impl Rng) -> Symbol {
        let r: f64 = rng.gen();
        if r < self.peak_mass {
            let peaks: Vec<usize> = self.preferred(context).collect();
            let pick = (r / self.peak_mass * peaks.len() as f64) as usize;
            Symbol(peaks[pick.min(peaks.len() - 1)] as u16)
        } else {
            Symbol(Uniform::new(0, self.alphabet as u16).sample(rng))
        }
    }

    /// Samples a whole sequence of length `len`.
    pub fn sample_sequence(&self, len: usize, rng: &mut impl Rng) -> Sequence {
        let mut symbols: Vec<Symbol> = Vec::with_capacity(len);
        for _ in 0..len {
            let next = self.sample_next(&symbols, rng);
            symbols.push(next);
        }
        Sequence::new(symbols)
    }
}

/// Specification of a full synthetic database (the paper's §6.2–§6.4
/// workloads).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Number of sequences (paper: 100 000; scale to taste).
    pub sequences: usize,
    /// Number of planted clusters (paper: 10–100).
    pub clusters: usize,
    /// Average sequence length (paper: 100–2000). Lengths are uniform in
    /// `[0.5·avg, 1.5·avg]`.
    pub avg_len: usize,
    /// Alphabet size (paper: 100, varied in Figure 6(d)).
    pub alphabet: usize,
    /// Fraction of sequences replaced by memoryless noise (paper: 5–10%).
    pub outlier_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        Self {
            sequences: 1000,
            clusters: 10,
            avg_len: 200,
            alphabet: 100,
            outlier_fraction: 0.05,
            seed: 42,
        }
    }
}

impl SyntheticSpec {
    /// Generates the database. Sequence `i`'s label is its planted cluster
    /// (`None` for injected outliers). Cluster sizes are balanced.
    pub fn generate(&self) -> SequenceDatabase {
        assert!(self.clusters >= 1, "need at least one planted cluster");
        assert!(self.alphabet >= 2, "need at least two symbols");
        assert!(
            (0.0..1.0).contains(&self.outlier_fraction),
            "outlier fraction must be in [0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let models: Vec<ClusterModel> = (0..self.clusters)
            .map(|k| ClusterModel::new(self.alphabet, self.seed.wrapping_add(k as u64 * 0x51ED)))
            .collect();

        let mut db = SequenceDatabase::new(Alphabet::synthetic(self.alphabet));
        let len_dist = Uniform::new_inclusive(self.avg_len / 2, self.avg_len * 3 / 2);
        let n_outliers = (self.sequences as f64 * self.outlier_fraction) as usize;
        let n_clustered = self.sequences - n_outliers;

        for i in 0..n_clustered {
            let cluster = i % self.clusters;
            let len = len_dist.sample(&mut rng).max(1);
            let seq = models[cluster].sample_sequence(len, &mut rng);
            db.push_labeled(seq, Some(cluster as u32));
        }
        for _ in 0..n_outliers {
            let len = len_dist.sample(&mut rng).max(1);
            db.push_labeled(random_sequence(self.alphabet, len, &mut rng), None);
        }
        db
    }

    /// Streams the database straight to disk as CSEQ v2 plus its `.csix`
    /// sidecar, one sequence at a time — only the current sequence is ever
    /// resident, so corpora far larger than RAM can be generated. The
    /// sampling loop and RNG stream are identical to
    /// [`SyntheticSpec::generate`]: the file holds byte-for-byte the same
    /// sequences and labels an in-memory generate-then-write would.
    /// Returns the sequence count.
    pub fn generate_streamed(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<usize> {
        assert!(self.clusters >= 1, "need at least one planted cluster");
        assert!(self.alphabet >= 2, "need at least two symbols");
        assert!(
            (0.0..1.0).contains(&self.outlier_fraction),
            "outlier fraction must be in [0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let models: Vec<ClusterModel> = (0..self.clusters)
            .map(|k| ClusterModel::new(self.alphabet, self.seed.wrapping_add(k as u64 * 0x51ED)))
            .collect();

        let mut w = CseqWriter::create(path, &Alphabet::synthetic(self.alphabet))?;
        let len_dist = Uniform::new_inclusive(self.avg_len / 2, self.avg_len * 3 / 2);
        let n_outliers = (self.sequences as f64 * self.outlier_fraction) as usize;
        let n_clustered = self.sequences - n_outliers;

        for i in 0..n_clustered {
            let cluster = i % self.clusters;
            let len = len_dist.sample(&mut rng).max(1);
            let seq = models[cluster].sample_sequence(len, &mut rng);
            w.push(seq.symbols(), Some(cluster as u32))?;
        }
        for _ in 0..n_outliers {
            let len = len_dist.sample(&mut rng).max(1);
            let seq = random_sequence(self.alphabet, len, &mut rng);
            w.push(seq.symbols(), None)?;
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_probabilities_normalize() {
        let m = ClusterModel::new(7, 99);
        let ctx = [Symbol(1), Symbol(3), Symbol(5)];
        let total: f64 = (0..7).map(|s| m.prob(&ctx, Symbol(s))).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn model_is_deterministic_per_context() {
        let m = ClusterModel::new(10, 7);
        let ctx = [Symbol(2), Symbol(4)];
        assert_eq!(m.prob(&ctx, Symbol(3)), m.prob(&ctx, Symbol(3)));
    }

    #[test]
    fn different_keys_give_different_models() {
        let a = ClusterModel::new(20, 1);
        let b = ClusterModel::new(20, 2);
        let ctx = [Symbol(0), Symbol(1), Symbol(2)];
        // At least one successor probability must differ.
        let differs =
            (0..20).any(|s| (a.prob(&ctx, Symbol(s)) - b.prob(&ctx, Symbol(s))).abs() > 1e-9);
        assert!(differs);
    }

    #[test]
    fn only_last_order_symbols_matter() {
        let m = ClusterModel {
            order: 3,
            ..ClusterModel::new(10, 5)
        };
        let short = [Symbol(7), Symbol(8), Symbol(9)];
        let long = [Symbol(1), Symbol(2), Symbol(7), Symbol(8), Symbol(9)];
        for s in 0..10 {
            assert_eq!(m.prob(&short, Symbol(s)), m.prob(&long, Symbol(s)));
        }
    }

    #[test]
    fn sampling_follows_the_peaks() {
        let m = ClusterModel::new(10, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let ctx = [Symbol(4), Symbol(4), Symbol(4)];
        let mut hits = 0;
        const DRAWS: usize = 2000;
        for _ in 0..DRAWS {
            let s = m.sample_next(&ctx, &mut rng);
            if m.prob(&ctx, s) > 0.1 {
                hits += 1;
            }
        }
        // ~90% of draws should land on preferred successors.
        assert!(hits as f64 / DRAWS as f64 > 0.8, "hits = {hits}");
    }

    #[test]
    fn generate_produces_the_requested_shape() {
        let spec = SyntheticSpec {
            sequences: 100,
            clusters: 4,
            avg_len: 50,
            alphabet: 12,
            outlier_fraction: 0.1,
            seed: 7,
        };
        let db = spec.generate();
        assert_eq!(db.len(), 100);
        assert_eq!(db.alphabet().len(), 12);
        assert_eq!(db.class_count(), 4);
        let outliers = db.labels().iter().filter(|l| l.is_none()).count();
        assert_eq!(outliers, 10);
        let avg = db.avg_len();
        assert!((30.0..75.0).contains(&avg), "avg len {avg}");
    }

    #[test]
    fn streamed_generation_matches_in_memory_exactly() {
        let spec = SyntheticSpec {
            sequences: 60,
            clusters: 3,
            avg_len: 40,
            alphabet: 15,
            outlier_fraction: 0.1,
            seed: 11,
        };
        let dir = std::env::temp_dir().join(format!("cluseq-datagen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("streamed.cseq");
        assert_eq!(spec.generate_streamed(&path).unwrap(), 60);
        let bytes = std::fs::read(&path).unwrap();
        let streamed = cluseq_seq::binio::decode(&mut bytes.as_slice()).unwrap();
        let resident = spec.generate();
        assert_eq!(streamed.len(), resident.len());
        for i in 0..resident.len() {
            assert_eq!(streamed.sequence(i), resident.sequence(i), "sequence {i}");
            assert_eq!(streamed.label(i), resident.label(i), "label {i}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = SyntheticSpec::default();
        let a = spec.generate();
        let b = spec.generate();
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.sequence(i), b.sequence(i));
        }
    }

    #[test]
    fn clusters_are_statistically_distinct() {
        // Sequences from the same model should share far more trigrams
        // than sequences from different models.
        let spec = SyntheticSpec {
            sequences: 20,
            clusters: 2,
            avg_len: 400,
            alphabet: 20,
            outlier_fraction: 0.0,
            seed: 3,
        };
        let db = spec.generate();
        let trigrams = |i: usize| -> std::collections::HashSet<Vec<u16>> {
            db.sequence(i)
                .symbols()
                .windows(3)
                .map(|w| w.iter().map(|s| s.0).collect())
                .collect()
        };
        // ids alternate cluster: 0, 1, 0, 1, ...
        let same = trigrams(0).intersection(&trigrams(2)).count();
        let cross = trigrams(0).intersection(&trigrams(1)).count();
        assert!(
            same > cross * 2,
            "same-cluster trigram overlap {same} should dwarf cross {cross}"
        );
    }
}
