//! A web-access-log workload: clickstream sessions from behavioural
//! profiles.
//!
//! The paper's introduction names *"web usage data"* and *"system
//! traces"* among the sequence domains CLUSEQ targets but evaluates
//! neither; this generator fills that gap for the examples and tests.
//! Each **profile** (shopper, researcher, bot, …) is a small Markov
//! process over page types with profile-characteristic transitions —
//! e.g. a buyer loops `product → cart → checkout` while a crawler walks
//! `listing → listing → listing` — and sessions are walks of realistic
//! lengths.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use cluseq_seq::{Alphabet, Sequence, SequenceDatabase, Symbol};

use crate::markov::MarkovChain;

/// Page types in the synthetic site. Index = symbol id.
pub const PAGES: [&str; 10] = [
    "home", "listing", "product", "cart", "checkout", "account", "search", "help", "review",
    "logout",
];

const HOME: u16 = 0;
const LISTING: u16 = 1;
const PRODUCT: u16 = 2;
const CART: u16 = 3;
const CHECKOUT: u16 = 4;
const ACCOUNT: u16 = 5;
const SEARCH: u16 = 6;
const HELP: u16 = 7;
const REVIEW: u16 = 8;
const LOGOUT: u16 = 9;

/// The built-in behavioural profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Profile {
    /// Browses listings and products, frequently buys: the
    /// `product → cart → checkout` loop dominates.
    Buyer,
    /// Searches and reads products/reviews, rarely buys.
    Researcher,
    /// Systematically sweeps listings (crawler-like).
    Crawler,
    /// Manages account settings and reads help pages.
    SupportSeeker,
}

impl Profile {
    /// All profiles, in label order.
    pub const ALL: [Profile; 4] = [
        Profile::Buyer,
        Profile::Researcher,
        Profile::Crawler,
        Profile::SupportSeeker,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Buyer => "buyer",
            Profile::Researcher => "researcher",
            Profile::Crawler => "crawler",
            Profile::SupportSeeker => "support-seeker",
        }
    }

    /// The profile's page-transition model.
    ///
    /// Unset pages route back `home` rather than random-walking uniformly:
    /// uniform fallback rows would make every profile generate the same
    /// inter-hub noise and blur the clusters together.
    pub fn chain(self) -> MarkovChain {
        let n = PAGES.len();
        let mut chain = MarkovChain::new(n, 1);
        let set_rows = std::cell::Cell::new(0u16); // bitmask of set pages
        let mut set = |from: u16, weights: &[(u16, f64)]| {
            set_rows.set(set_rows.get() | (1 << from));
            let mut dist = vec![0.004; n];
            for &(to, w) in weights {
                dist[to as usize] += w;
            }
            let total: f64 = dist.iter().sum();
            let dist: Vec<f64> = dist.iter().map(|d| d / total).collect();
            chain.set(&[Symbol(from)], dist);
        };
        match self {
            Profile::Buyer => {
                set(HOME, &[(LISTING, 0.5), (PRODUCT, 0.3)]);
                set(LISTING, &[(PRODUCT, 0.7)]);
                set(PRODUCT, &[(CART, 0.55), (PRODUCT, 0.2)]);
                set(CART, &[(CHECKOUT, 0.7), (PRODUCT, 0.2)]);
                set(CHECKOUT, &[(HOME, 0.4), (LOGOUT, 0.4)]);
            }
            Profile::Researcher => {
                set(HOME, &[(SEARCH, 0.6)]);
                set(SEARCH, &[(PRODUCT, 0.6), (SEARCH, 0.2)]);
                set(PRODUCT, &[(REVIEW, 0.55), (SEARCH, 0.25)]);
                set(REVIEW, &[(PRODUCT, 0.4), (SEARCH, 0.4)]);
            }
            Profile::Crawler => {
                set(HOME, &[(LISTING, 0.9)]);
                set(LISTING, &[(LISTING, 0.75), (PRODUCT, 0.15)]);
                set(PRODUCT, &[(LISTING, 0.85)]);
            }
            Profile::SupportSeeker => {
                set(HOME, &[(ACCOUNT, 0.45), (HELP, 0.4)]);
                set(ACCOUNT, &[(HELP, 0.5), (ACCOUNT, 0.25)]);
                set(HELP, &[(HELP, 0.4), (ACCOUNT, 0.3), (LOGOUT, 0.15)]);
            }
        }
        for page in 0..n as u16 {
            if set_rows.get() & (1 << page) == 0 {
                set(page, &[(HOME, 0.8)]);
            }
        }
        chain
    }
}

/// Specification of a clickstream database.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WeblogSpec {
    /// Sessions per profile.
    pub sessions_per_profile: usize,
    /// Session length range (page views), inclusive.
    pub session_len: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl Default for WeblogSpec {
    fn default() -> Self {
        Self {
            sessions_per_profile: 100,
            session_len: (20, 80),
            seed: 80,
        }
    }
}

impl WeblogSpec {
    /// Generates the session database; labels are [`Profile::ALL`]
    /// indices. Every session starts at `home`.
    pub fn generate(&self) -> SequenceDatabase {
        let mut alphabet = Alphabet::new();
        for p in PAGES {
            alphabet.intern(p);
        }
        let mut db = SequenceDatabase::new(alphabet);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let len_dist = Uniform::new_inclusive(self.session_len.0.max(2), self.session_len.1);

        for (label, profile) in Profile::ALL.iter().enumerate() {
            let chain = profile.chain();
            for _ in 0..self.sessions_per_profile {
                let len = len_dist.sample(&mut rng);
                let mut pages: Vec<Symbol> = vec![Symbol(HOME)];
                while pages.len() < len {
                    let next = chain.sample_next(&pages, &mut rng);
                    pages.push(next);
                }
                db.push_labeled(Sequence::new(pages), Some(label as u32));
            }
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_the_requested_shape() {
        let spec = WeblogSpec {
            sessions_per_profile: 10,
            ..Default::default()
        };
        let db = spec.generate();
        assert_eq!(db.len(), 40);
        assert_eq!(db.class_count(), 4);
        assert_eq!(db.alphabet().len(), PAGES.len());
        for (_, seq, _) in db.iter() {
            assert_eq!(seq[0], Symbol(HOME), "sessions start at home");
            assert!(seq.len() >= 20 && seq.len() <= 80);
        }
    }

    #[test]
    fn buyer_sessions_reach_checkout_more_than_crawlers() {
        let db = WeblogSpec::default().generate();
        let checkout_rate = |label: u32| -> f64 {
            let mut hits = 0usize;
            let mut total = 0usize;
            for (_, seq, l) in db.iter() {
                if l == Some(label) {
                    hits += seq.iter().filter(|s| s.0 == CHECKOUT).count();
                    total += seq.len();
                }
            }
            hits as f64 / total as f64
        };
        let buyer = checkout_rate(0);
        let crawler = checkout_rate(2);
        assert!(
            buyer > crawler * 3.0,
            "buyer checkout rate {buyer} vs crawler {crawler}"
        );
    }

    #[test]
    fn profiles_have_distinct_transition_statistics() {
        // listing -> listing dominates for crawlers, not for buyers.
        let db = WeblogSpec::default().generate();
        let ll_rate = |label: u32| -> f64 {
            let mut ll = 0usize;
            let mut l_any = 0usize;
            for (_, seq, l) in db.iter() {
                if l == Some(label) {
                    for w in seq.symbols().windows(2) {
                        if w[0].0 == LISTING {
                            l_any += 1;
                            if w[1].0 == LISTING {
                                ll += 1;
                            }
                        }
                    }
                }
            }
            ll as f64 / l_any.max(1) as f64
        };
        assert!(ll_rate(2) > 0.5, "crawler listing->listing {}", ll_rate(2));
        assert!(ll_rate(0) < 0.3, "buyer listing->listing {}", ll_rate(0));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = WeblogSpec::default().generate();
        let b = WeblogSpec::default().generate();
        for i in 0..a.len().min(10) {
            assert_eq!(a.sequence(i), b.sequence(i));
        }
    }

    #[test]
    fn chains_rows_are_normalized() {
        for p in Profile::ALL {
            let chain = p.chain();
            for from in 0..PAGES.len() as u16 {
                let dist = chain.distribution(&[Symbol(from)]);
                let total: f64 = dist.iter().sum();
                assert!((total - 1.0).abs() < 1e-9, "{p:?} row {from}");
            }
        }
    }
}
