//! A stand-in for the paper's natural-language corpus (Table 4).
//!
//! The paper clusters 600 sentences each of English (cnn.com), Chinese
//! (sina.com.cn, romanized) and Japanese (news.yahoo.co.jp, romanized),
//! with spaces removed and 100 noise sentences in other languages mixed
//! in. The 2002 scrapes are unrecoverable, so this module generates
//! sentences from per-language inventories that reproduce exactly the
//! letter statistics the paper says drive the result:
//!
//! * **English** — frequent words rich in "th", "he", "ion", "ch", "sh";
//! * **Chinese** — the pinyin syllable inventory (zh/x/q initials, ng
//!   finals; note the shared "ch"/"sh"/"ion"-like fragments the paper
//!   blames for English↔Chinese confusion);
//! * **Japanese** — romaji with strict consonant–vowel alternation (the
//!   paper: "a vowel is likely followed by a consonant and vice versa");
//! * noise — German and transliterated Russian words.

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use cluseq_seq::{Alphabet, Sequence, SequenceDatabase};

/// The three clustered languages (Table 4's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Language {
    English,
    Chinese,
    Japanese,
}

impl Language {
    /// All clustered languages, in label order (0, 1, 2).
    pub const ALL: [Language; 3] = [Language::English, Language::Chinese, Language::Japanese];

    /// Table 4 column header.
    pub fn name(self) -> &'static str {
        match self {
            Language::English => "English",
            Language::Chinese => "Chinese",
            Language::Japanese => "Japanese",
        }
    }
}

const ENGLISH_WORDS: &[&str] = &[
    "the",
    "and",
    "that",
    "this",
    "with",
    "from",
    "they",
    "have",
    "been",
    "their",
    "which",
    "there",
    "would",
    "about",
    "other",
    "these",
    "when",
    "them",
    "then",
    "than",
    "what",
    "were",
    "into",
    "more",
    "some",
    "could",
    "time",
    "people",
    "government",
    "president",
    "nation",
    "action",
    "election",
    "information",
    "situation",
    "decision",
    "question",
    "administration",
    "attention",
    "position",
    "education",
    "operation",
    "production",
    "protection",
    "relation",
    "section",
    "station",
    "while",
    "where",
    "white",
    "house",
    "should",
    "through",
    "thought",
    "together",
    "another",
    "whether",
    "weather",
    "mother",
    "father",
    "brother",
    "change",
    "charge",
    "church",
    "search",
    "reach",
    "teach",
    "each",
    "much",
    "such",
    "which",
    "watch",
    "catch",
    "march",
    "show",
    "shall",
    "share",
    "shot",
    "short",
    "should",
    "shut",
    "ship",
    "shape",
    "wish",
    "wash",
    "push",
    "fresh",
    "flash",
    "news",
    "report",
    "world",
    "year",
    "week",
    "month",
    "state",
    "city",
    "country",
    "police",
    "court",
    "case",
    "law",
    "party",
    "group",
    "member",
    "leader",
    "official",
    "minister",
    "market",
    "money",
    "business",
    "company",
    "industry",
    "economy",
    "growth",
    "plan",
    "program",
    "project",
    "service",
    "system",
    "public",
    "national",
    "international",
    "political",
    "military",
    "security",
    "following",
    "including",
    "according",
    "during",
    "against",
    "between",
    "because",
    "before",
    "after",
    "under",
    "over",
    "three",
    "there",
];

/// Pinyin syllables (initial × final samples covering the characteristic
/// zh/ch/sh/x/q initials and ng finals).
const PINYIN_SYLLABLES: &[&str] = &[
    "zhang", "zhong", "zheng", "zhou", "zhao", "zhu", "zhi", "chang", "cheng", "chong", "chu",
    "chi", "chen", "chao", "shang", "sheng", "shi", "shu", "shen", "shan", "shou", "xiang", "xian",
    "xiao", "xin", "xing", "xu", "xue", "qing", "qian", "qiang", "qiao", "qu", "quan", "jiang",
    "jian", "jiao", "jing", "jin", "ju", "jue", "wang", "wei", "wen", "wu", "wo", "guo", "guan",
    "guang", "gong", "gao", "gai", "ge", "gu", "dao", "dang", "deng", "dong", "du", "da", "de",
    "di", "tian", "tang", "tong", "tai", "ta", "te", "ti", "tu", "nian", "ning", "nan", "nei",
    "na", "ne", "ni", "nu", "liang", "ling", "lian", "lao", "li", "lu", "hai", "han", "hang",
    "hao", "he", "hen", "hong", "hu", "hua", "huang", "hui", "huo", "ban", "bang", "bao", "bei",
    "ben", "bi", "bian", "biao", "bing", "bu", "mao", "mei", "men", "mi", "mian", "min", "ming",
    "mu", "fang", "fei", "fen", "feng", "fu", "fa", "ren", "ri", "rong", "ru", "ran", "rang",
    "kai", "kan", "kang", "ke", "kong", "kuo", "yang", "yan", "yao", "ye", "yi", "yin", "ying",
    "yong", "you", "yu", "yuan", "yue", "zai", "zan", "zao", "ze", "zen", "zi", "zong", "zou",
    "zu", "zuo", "cai", "cao", "ceng", "ci", "cong", "cun", "san", "sang", "sao", "se", "si",
    "song", "su", "sun", "suo",
];

/// Romaji syllables: strict consonant–vowel (plus the bare vowels and the
/// moraic "n"), reproducing the CV-alternation rule the paper highlights.
const ROMAJI_SYLLABLES: &[&str] = &[
    "ka", "ki", "ku", "ke", "ko", "sa", "shi", "su", "se", "so", "ta", "chi", "tsu", "te", "to",
    "na", "ni", "nu", "ne", "no", "ha", "hi", "fu", "he", "ho", "ma", "mi", "mu", "me", "mo", "ya",
    "yu", "yo", "ra", "ri", "ru", "re", "ro", "wa", "ga", "gi", "gu", "ge", "go", "za", "ji", "zu",
    "ze", "zo", "da", "de", "do", "ba", "bi", "bu", "be", "bo", "pa", "pi", "pu", "pe", "po",
    "kya", "kyu", "kyo", "sha", "shu", "sho", "cha", "chu", "cho", "n", "a", "i", "u", "e", "o",
    "kai", "sei", "tou", "kou", "sou", "shou", "jou", "dou",
];

const GERMAN_WORDS: &[&str] = &[
    "der",
    "die",
    "das",
    "und",
    "nicht",
    "mit",
    "sich",
    "auf",
    "eine",
    "auch",
    "nach",
    "werden",
    "wurde",
    "zwischen",
    "regierung",
    "deutschland",
    "gegen",
    "durch",
    "zeit",
    "jahr",
    "uber",
    "unter",
    "schon",
    "noch",
    "immer",
    "wieder",
    "menschen",
    "leben",
    "strasse",
    "schule",
    "sprache",
    "wirtschaft",
    "geschichte",
    "gesellschaft",
    "arbeit",
];

const RUSSIAN_TRANSLIT_WORDS: &[&str] = &[
    "chto",
    "kak",
    "eto",
    "ochen",
    "mozhno",
    "nado",
    "budet",
    "byl",
    "byla",
    "gorod",
    "strana",
    "pravitelstvo",
    "prezident",
    "vremya",
    "chelovek",
    "zhizn",
    "rabota",
    "shkola",
    "yazyk",
    "istoriya",
    "obshchestvo",
    "ekonomika",
    "vopros",
    "otvet",
    "khorosho",
    "plokho",
    "bolshoy",
    "novyy",
    "staryy",
    "dengi",
];

/// Specification of the Table 4 corpus.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LanguageSpec {
    /// Sentences per clustered language (paper: 600).
    pub sentences_per_language: usize,
    /// Unlabeled noise sentences in other languages (paper: 100).
    pub noise_sentences: usize,
    /// Words (or syllable groups) per sentence, inclusive range.
    pub words_per_sentence: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl Default for LanguageSpec {
    fn default() -> Self {
        Self {
            sentences_per_language: 600,
            noise_sentences: 100,
            words_per_sentence: (6, 14),
            seed: 2002,
        }
    }
}

impl LanguageSpec {
    /// Generates the corpus: labels 0/1/2 = English/Chinese/Japanese,
    /// `None` = noise. Spaces are removed, per the paper ("the space
    /// character is eliminated to create extra challenges").
    pub fn generate(&self) -> SequenceDatabase {
        let mut db = SequenceDatabase::new(Alphabet::latin_lowercase());
        let mut rng = StdRng::seed_from_u64(self.seed);

        for (label, lang) in Language::ALL.iter().enumerate() {
            for _ in 0..self.sentences_per_language {
                let text = self.sentence(*lang, &mut rng);
                let seq = Sequence::parse_str(db.alphabet(), &text)
                    .expect("inventories are lowercase a–z");
                db.push_labeled(seq, Some(label as u32));
            }
        }
        for i in 0..self.noise_sentences {
            let inventory: &[&str] = if i % 2 == 0 {
                GERMAN_WORDS
            } else {
                RUSSIAN_TRANSLIT_WORDS
            };
            let text = self.concat_words(inventory, 1, &mut rng);
            let seq =
                Sequence::parse_str(db.alphabet(), &text).expect("inventories are lowercase a–z");
            db.push_labeled(seq, None);
        }
        db
    }

    /// One sentence in `lang`, spaces removed.
    pub fn sentence(&self, lang: Language, rng: &mut StdRng) -> String {
        match lang {
            Language::English => self.concat_words(ENGLISH_WORDS, 1, rng),
            // Chinese/Japanese "words" are 1–3 syllables.
            Language::Chinese => self.concat_words(PINYIN_SYLLABLES, 2, rng),
            Language::Japanese => self.concat_words(ROMAJI_SYLLABLES, 3, rng),
        }
    }

    fn concat_words(&self, inventory: &[&str], units_per_word: usize, rng: &mut StdRng) -> String {
        let words = Uniform::new_inclusive(self.words_per_sentence.0, self.words_per_sentence.1)
            .sample(rng);
        let mut out = String::new();
        for _ in 0..words {
            let units = rng.gen_range(1..=units_per_word);
            for _ in 0..units {
                out.push_str(inventory[rng.gen_range(0..inventory.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_the_requested_shape() {
        let spec = LanguageSpec {
            sentences_per_language: 20,
            noise_sentences: 6,
            ..Default::default()
        };
        let db = spec.generate();
        assert_eq!(db.len(), 66);
        assert_eq!(db.class_count(), 3);
        assert_eq!(db.labels().iter().filter(|l| l.is_none()).count(), 6);
        assert_eq!(db.alphabet().len(), 26);
    }

    #[test]
    fn sentences_contain_no_spaces() {
        let spec = LanguageSpec::default();
        let mut rng = StdRng::seed_from_u64(5);
        for lang in Language::ALL {
            let s = spec.sentence(lang, &mut rng);
            assert!(!s.contains(' '));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn english_is_th_heavy() {
        let spec = LanguageSpec::default();
        let mut rng = StdRng::seed_from_u64(9);
        let mut en_th = 0usize;
        let mut ja_th = 0usize;
        for _ in 0..50 {
            en_th += spec
                .sentence(Language::English, &mut rng)
                .matches("th")
                .count();
            ja_th += spec
                .sentence(Language::Japanese, &mut rng)
                .matches("th")
                .count();
        }
        assert!(
            en_th > ja_th * 3,
            "English 'th' count {en_th} should dwarf Japanese {ja_th}"
        );
    }

    #[test]
    fn japanese_alternates_consonants_and_vowels() {
        let spec = LanguageSpec::default();
        let mut rng = StdRng::seed_from_u64(11);
        let is_vowel = |c: char| "aeiou".contains(c);
        let mut alternations = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let s = spec.sentence(Language::Japanese, &mut rng);
            let chars: Vec<char> = s.chars().collect();
            for w in chars.windows(2) {
                total += 1;
                if is_vowel(w[0]) != is_vowel(w[1]) {
                    alternations += 1;
                }
            }
        }
        let rate = alternations as f64 / total as f64;
        assert!(rate > 0.6, "CV alternation rate {rate}");
    }

    #[test]
    fn chinese_is_ng_heavy() {
        let spec = LanguageSpec::default();
        let mut rng = StdRng::seed_from_u64(13);
        let mut zh_ng = 0usize;
        let mut en_ng = 0usize;
        for _ in 0..50 {
            zh_ng += spec
                .sentence(Language::Chinese, &mut rng)
                .matches("ng")
                .count();
            en_ng += spec
                .sentence(Language::English, &mut rng)
                .matches("ng")
                .count();
        }
        assert!(zh_ng > en_ng, "pinyin 'ng' {zh_ng} vs English {en_ng}");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = LanguageSpec {
            sentences_per_language: 5,
            noise_sentences: 2,
            ..Default::default()
        };
        let a = spec.generate();
        let b = spec.generate();
        for i in 0..a.len() {
            assert_eq!(a.sequence(i), b.sequence(i));
        }
    }

    #[test]
    fn inventories_are_clean() {
        for w in ENGLISH_WORDS
            .iter()
            .chain(PINYIN_SYLLABLES)
            .chain(ROMAJI_SYLLABLES)
            .chain(GERMAN_WORDS)
            .chain(RUSSIAN_TRANSLIT_WORDS)
        {
            assert!(
                w.chars().all(|c| c.is_ascii_lowercase()),
                "inventory word {w:?} must be lowercase a-z"
            );
        }
    }
}
