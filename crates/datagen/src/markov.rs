//! Explicit order-k Markov chains with stored transition tables.
//!
//! Unlike [`crate::cluster_gen::ClusterModel`] (which derives distributions
//! by hashing and never materializes them), a [`MarkovChain`] stores its
//! table explicitly — handy for tests that need to know the exact
//! generating distribution, and for ablation workloads with controlled
//! divergence between clusters.

use std::collections::HashMap;

use rand::Rng;

use cluseq_seq::{Sequence, Symbol};

/// An order-k Markov chain over a dense alphabet.
#[derive(Debug, Clone)]
pub struct MarkovChain {
    alphabet: usize,
    order: usize,
    /// context window → next-symbol distribution (must sum to 1). Missing
    /// contexts fall back to the uniform distribution.
    table: HashMap<Vec<Symbol>, Vec<f64>>,
}

impl MarkovChain {
    /// Creates a chain with no transitions (everything uniform).
    pub fn new(alphabet: usize, order: usize) -> Self {
        assert!(alphabet >= 1);
        Self {
            alphabet,
            order,
            table: HashMap::new(),
        }
    }

    /// Sets the next-symbol distribution of one context window.
    ///
    /// # Panics
    ///
    /// Panics if the context length exceeds the order, the distribution
    /// size mismatches the alphabet, or it does not sum to ~1.
    pub fn set(&mut self, context: &[Symbol], dist: Vec<f64>) -> &mut Self {
        assert!(context.len() <= self.order, "context longer than order");
        assert_eq!(dist.len(), self.alphabet, "distribution size mismatch");
        let sum: f64 = dist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "distribution sums to {sum}");
        assert!(dist.iter().all(|&p| p >= 0.0));
        self.table.insert(context.to_vec(), dist);
        self
    }

    /// Convenience: a deterministic transition `context → next`.
    pub fn set_deterministic(&mut self, context: &[Symbol], next: Symbol) -> &mut Self {
        let mut dist = vec![0.0; self.alphabet];
        dist[next.index()] = 1.0;
        self.set(context, dist)
    }

    /// The distribution used for `context` (exact window of up to `order`
    /// trailing symbols; falls back to shorter windows, then uniform).
    pub fn distribution(&self, context: &[Symbol]) -> Vec<f64> {
        let start = context.len().saturating_sub(self.order);
        let window = &context[start..];
        // Longest stored suffix of the window.
        for w in (0..=window.len()).rev() {
            if let Some(d) = self.table.get(&window[window.len() - w..]) {
                return d.clone();
            }
        }
        vec![1.0 / self.alphabet as f64; self.alphabet]
    }

    /// `P(next | context)`.
    pub fn prob(&self, context: &[Symbol], next: Symbol) -> f64 {
        self.distribution(context)[next.index()]
    }

    /// Samples one symbol.
    pub fn sample_next(&self, context: &[Symbol], rng: &mut impl Rng) -> Symbol {
        let dist = self.distribution(context);
        let mut r: f64 = rng.gen();
        for (i, &p) in dist.iter().enumerate() {
            if r < p {
                return Symbol(i as u16);
            }
            r -= p;
        }
        Symbol((self.alphabet - 1) as u16)
    }

    /// Samples a sequence of length `len`.
    pub fn sample_sequence(&self, len: usize, rng: &mut impl Rng) -> Sequence {
        let mut out: Vec<Symbol> = Vec::with_capacity(len);
        for _ in 0..len {
            let next = self.sample_next(&out, rng);
            out.push(next);
        }
        Sequence::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sym(i: u16) -> Symbol {
        Symbol(i)
    }

    #[test]
    fn unset_contexts_are_uniform() {
        let chain = MarkovChain::new(4, 2);
        let d = chain.distribution(&[sym(0)]);
        assert!(d.iter().all(|&p| (p - 0.25).abs() < 1e-12));
    }

    #[test]
    fn set_distribution_is_returned_exactly() {
        let mut chain = MarkovChain::new(2, 1);
        chain.set(&[sym(0)], vec![0.3, 0.7]);
        assert_eq!(chain.prob(&[sym(0)], sym(1)), 0.7);
        assert_eq!(chain.prob(&[sym(1)], sym(1)), 0.5, "unset stays uniform");
    }

    #[test]
    fn longest_suffix_wins() {
        let mut chain = MarkovChain::new(2, 2);
        chain.set(&[sym(1)], vec![0.9, 0.1]);
        chain.set(&[sym(0), sym(1)], vec![0.1, 0.9]);
        // Context "...0 1": the order-2 entry applies.
        assert_eq!(chain.prob(&[sym(0), sym(1)], sym(1)), 0.9);
        // Context "...1 1": only the order-1 entry matches.
        assert_eq!(chain.prob(&[sym(1), sym(1)], sym(1)), 0.1);
    }

    #[test]
    fn only_trailing_window_is_considered() {
        let mut chain = MarkovChain::new(2, 1);
        chain.set(&[sym(1)], vec![1.0, 0.0]);
        let long_ctx = [sym(0), sym(0), sym(0), sym(1)];
        assert_eq!(chain.prob(&long_ctx, sym(0)), 1.0);
    }

    #[test]
    fn deterministic_chain_generates_its_cycle() {
        let mut chain = MarkovChain::new(2, 1);
        chain.set_deterministic(&[sym(0)], sym(1));
        chain.set_deterministic(&[sym(1)], sym(0));
        let mut rng = StdRng::seed_from_u64(5);
        let seq = chain.sample_sequence(20, &mut rng);
        for w in seq.symbols().windows(2) {
            assert_ne!(w[0], w[1], "strict alternation");
        }
    }

    #[test]
    fn sampling_respects_probabilities() {
        let mut chain = MarkovChain::new(2, 0);
        chain.set(&[], vec![0.8, 0.2]);
        let mut rng = StdRng::seed_from_u64(6);
        let seq = chain.sample_sequence(5000, &mut rng);
        let zeros = seq.iter().filter(|s| s.index() == 0).count();
        let frac = zeros as f64 / 5000.0;
        assert!((frac - 0.8).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn set_rejects_unnormalized_distributions() {
        MarkovChain::new(2, 1).set(&[sym(0)], vec![0.5, 0.1]);
    }
}
