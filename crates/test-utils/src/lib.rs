//! Shared fixtures for the repo-level integration and property suites.
//!
//! Three suites — `tests/determinism.rs`, `tests/incremental.rs`, and
//! `tests/kernel_equivalence.rs` — compare runs for *byte* equality, and
//! each grew its own copy of the same scaffolding: a synthetic clustered
//! database, an [`Observables`] snapshot with floats captured as raw
//! bits, and a proptest strategy producing random PST models. This crate
//! is that scaffolding, written once. It is a dev-dependency only; no
//! shipped artifact links it.

use cluseq_core::CluseqOutcome;
use cluseq_datagen::SyntheticSpec;
use cluseq_pst::{Pst, PstParams};
use cluseq_seq::{BackgroundModel, Sequence, SequenceDatabase, Symbol};
use proptest::prelude::*;

// ---- dataset builders --------------------------------------------------

/// A synthetic clustered database, positionally: the [`SyntheticSpec`]
/// struct literal every suite used to spell out.
pub fn clustered_db(
    sequences: usize,
    clusters: usize,
    avg_len: usize,
    alphabet: usize,
    outlier_fraction: f64,
    seed: u64,
) -> SequenceDatabase {
    SyntheticSpec {
        sequences,
        clusters,
        avg_len,
        alphabet,
        outlier_fraction,
        seed,
    }
    .generate()
}

// ---- outcome observation -----------------------------------------------

/// Everything observable about a [`CluseqOutcome`], with floats captured
/// as raw bits so "close enough" can never pass for "identical".
#[derive(Debug, PartialEq, Eq)]
pub struct Observables {
    pub memberships: Vec<Vec<usize>>,
    pub best_cluster: Vec<Option<usize>>,
    pub outliers: Vec<usize>,
    pub final_log_t: u64,
    pub iterations: usize,
    pub history: Vec<(usize, usize, usize, usize, usize, u64, bool)>,
}

/// Snapshots `outcome` for bit-exact comparison (see [`Observables`]).
pub fn observe(outcome: &CluseqOutcome) -> Observables {
    Observables {
        memberships: outcome.membership_lists(),
        best_cluster: outcome.best_cluster.clone(),
        outliers: outcome.outliers.clone(),
        final_log_t: outcome.final_log_t.to_bits(),
        iterations: outcome.iterations,
        history: outcome
            .history
            .iter()
            .map(|s| {
                (
                    s.iteration,
                    s.new_clusters,
                    s.removed_clusters,
                    s.clusters_at_end,
                    s.membership_changes,
                    s.log_t.to_bits(),
                    s.threshold_moved,
                )
            })
            .collect(),
    }
}

// ---- random model builders ---------------------------------------------

/// A random PST workload: alphabet size, training material, probe
/// sequence, and model parameters (smoothing on or off, and an optional
/// prune-to byte budget as a fraction of the unpruned size).
#[derive(Debug, Clone)]
pub struct PstWorkload {
    pub alphabet: usize,
    pub training: Vec<Vec<u16>>,
    pub probe: Vec<u16>,
    pub max_depth: usize,
    pub significance: u64,
    pub smoothing: Option<f64>,
    pub prune_fraction: Option<f64>,
}

impl PstWorkload {
    /// Builds the PST and background model this workload describes. The
    /// background is non-uniform — the symbol frequencies of the training
    /// data, exactly what the driver fits from a database.
    pub fn build(&self) -> (Pst, BackgroundModel) {
        let mut params = PstParams::default()
            .with_max_depth(self.max_depth)
            .with_significance(self.significance);
        params.smoothing = self.smoothing;
        let mut pst = Pst::new(self.alphabet, params);
        for seq in &self.training {
            pst.add_sequence(&Sequence::new(seq.iter().map(|&s| Symbol(s)).collect()));
        }
        if let Some(fraction) = self.prune_fraction {
            pst.prune_to((pst.bytes() as f64 * fraction) as usize);
        }
        let seqs: Vec<Sequence> = self
            .training
            .iter()
            .map(|seq| Sequence::new(seq.iter().map(|&s| Symbol(s)).collect()))
            .collect();
        let background = BackgroundModel::fit(self.alphabet, seqs.iter());
        (pst, background)
    }

    /// The probe as typed symbols.
    pub fn probe_symbols(&self) -> Vec<Symbol> {
        self.probe.iter().map(|&s| Symbol(s)).collect()
    }
}

/// Strategy producing arbitrary [`PstWorkload`]s: small alphabets, a
/// handful of training sequences, probes up to 80 symbols, smoothed or
/// not, pruned or not.
pub fn arb_pst_workload() -> impl Strategy<Value = PstWorkload> {
    (2usize..8).prop_flat_map(|alphabet| {
        let sym = 0..alphabet as u16;
        (
            prop::collection::vec(prop::collection::vec(sym.clone(), 5..60), 1..5),
            prop::collection::vec(sym, 0..80),
            1usize..6,
            1u64..5,
            prop::option::of(1e-4f64..0.02),
            prop::option::of(0.3f64..0.9),
        )
            .prop_map(
                move |(training, probe, max_depth, significance, smoothing, prune_fraction)| {
                    PstWorkload {
                        alphabet,
                        training,
                        probe,
                        max_depth,
                        significance,
                        smoothing,
                        prune_fraction,
                    }
                },
            )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_db_matches_the_spec_it_abbreviates() {
        let spec = SyntheticSpec {
            sequences: 24,
            clusters: 3,
            avg_len: 30,
            alphabet: 12,
            outlier_fraction: 0.1,
            seed: 9,
        };
        let via_helper = clustered_db(24, 3, 30, 12, 0.1, 9);
        let via_spec = spec.generate();
        assert_eq!(via_helper.len(), via_spec.len());
        for i in 0..via_helper.len() {
            assert_eq!(via_helper.sequence(i), via_spec.sequence(i));
        }
    }

    #[test]
    fn workload_build_is_deterministic() {
        let w = PstWorkload {
            alphabet: 4,
            training: vec![vec![0, 1, 2, 3, 0, 1, 2], vec![3, 2, 1, 0]],
            probe: vec![0, 1, 2],
            max_depth: 3,
            significance: 1,
            smoothing: Some(0.01),
            prune_fraction: None,
        };
        let (a, _) = w.build();
        let (b, _) = w.build();
        assert_eq!(a.bytes(), b.bytes());
        assert_eq!(a.node_count(), b.node_count());
    }
}
