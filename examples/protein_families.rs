//! Protein-family clustering — the paper's flagship application (§6.1,
//! Tables 2–3).
//!
//! Clusters a synthetic stand-in for the SWISS-PROT database (30 motif-
//! bearing families over the 20-letter amino-acid alphabet, scaled down)
//! and prints per-family precision/recall in the layout of Table 3.
//!
//! ```sh
//! cargo run --release --example protein_families
//! ```

use cluseq::datagen::protein::FAMILY_NAMES;
use cluseq::prelude::*;

fn main() {
    // Ten families (the ones Table 3 reports), ~5% of the paper's sizes.
    let spec = ProteinFamilySpec {
        families: 10,
        size_scale: 0.05,
        seq_len: (120, 250),
        ..Default::default()
    };
    let db = spec.generate();
    println!(
        "protein database: {} sequences, {} families, lengths {}..{}",
        db.len(),
        db.class_count(),
        spec.seq_len.0,
        spec.seq_len.1
    );

    // The paper deliberately starts from the *wrong* settings (k = 10
    // would be right here, so start from 1; t = 1.0005) and lets the
    // algorithm adapt.
    let params = CluseqParams::default()
        .with_initial_clusters(1)
        .with_initial_threshold(1.0005)
        .with_significance(10)
        .with_max_depth(8)
        .with_seed(8);
    let (outcome, elapsed) = Stopwatch::time(|| Cluseq::new(params).run(&db));
    println!(
        "CLUSEQ: {} clusters in {:?}, final t = {:.2}",
        outcome.cluster_count(),
        elapsed,
        outcome.final_t()
    );

    let confusion = Confusion::new(
        &db.labels(),
        &outcome.membership_lists(),
        MatchStrategy::Hungarian,
    );
    println!(
        "overall: {:.0}% correctly labeled\n",
        confusion.accuracy() * 100.0
    );

    // Table 3 layout: families by descending size.
    println!(
        "{:<15} {:>6} {:>12} {:>9}",
        "Family", "Size", "Precision %", "Recall %"
    );
    for m in confusion.class_metrics() {
        println!(
            "{:<15} {:>6} {:>12.0} {:>9.0}",
            FAMILY_NAMES[m.class as usize],
            m.size,
            m.precision * 100.0,
            m.recall * 100.0
        );
    }
}
