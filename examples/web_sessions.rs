//! Web-session segmentation with a persisted model — the "web usage data"
//! domain from the paper's introduction.
//!
//! Clusters clickstream sessions from four behavioural profiles, saves the
//! trained model to disk, reloads it, and routes a stream of fresh
//! sessions through the loaded classifier — the deployment shape a real
//! system would use (train offline, classify online).
//!
//! ```sh
//! cargo run --release --example web_sessions
//! ```

use cluseq::datagen::weblog::PAGES;
use cluseq::prelude::*;

fn main() {
    // 1. Train on a batch of labeled-for-evaluation sessions.
    let spec = WeblogSpec {
        sessions_per_profile: 120,
        session_len: (25, 90),
        seed: 80,
    };
    let db = spec.generate();
    println!(
        "training: {} sessions over {} page types, {} behavioural profiles",
        db.len(),
        db.alphabet().len(),
        Profile::ALL.len()
    );

    // Small alphabets (10 page types) produce a broad noise bulk of lucky
    // short matches; the §4.6 histogram-valley heuristic puts t inside it
    // and everything overlaps. Fix the threshold instead — the knob the
    // paper says users may also set directly. Anything in ln t ∈ [6, 14]
    // works here; the separation between profiles is wide.
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(4)
            .with_initial_threshold(8.0f64.exp())
            .with_threshold_adjustment(false)
            .with_significance(2)
            .with_min_exclusive(15)
            .with_max_depth(4)
            .with_seed(5),
    )
    .run(&db);
    let confusion = Confusion::new(
        &db.labels(),
        &outcome.membership_lists(),
        MatchStrategy::Hungarian,
    );
    println!(
        "trained: {} clusters, {:.0}% of sessions correctly segmented",
        outcome.cluster_count(),
        confusion.accuracy() * 100.0
    );

    // 2. Persist the model, then reload it (round-trip through a buffer
    //    here; a real deployment writes a file).
    let mut buf = Vec::new();
    SavedModel::from_outcome(&outcome)
        .save(&mut buf)
        .expect("serializing to a Vec cannot fail");
    let model = SavedModel::load(&mut buf.as_slice()).expect("own bytes round-trip");
    println!(
        "model persisted: {} bytes for {} cluster models\n",
        buf.len(),
        model.cluster_count()
    );

    // 3. Describe each discovered segment by its most characteristic page
    //    transitions (highest-probability significant digraphs).
    for (k, cluster) in model.clusters.iter().enumerate() {
        let mut top: Vec<(String, f64)> = Vec::new();
        for from in 0..PAGES.len() as u16 {
            let count = cluster.pst.segment_count(&[Symbol(from)]);
            if count < 50 {
                continue;
            }
            for to in 0..PAGES.len() as u16 {
                let p = cluster.pst.raw_predict(&[Symbol(from)], Symbol(to));
                if p > 0.35 {
                    top.push((
                        format!("{}→{}", PAGES[from as usize], PAGES[to as usize]),
                        p,
                    ));
                }
            }
        }
        top.sort_by(|a, b| b.1.total_cmp(&a.1));
        top.truncate(3);
        let desc: Vec<String> = top
            .iter()
            .map(|(t, p)| format!("{t} ({:.0}%)", p * 100.0))
            .collect();
        println!("segment {k}: {}", desc.join(", "));
    }

    // 4. Stream fresh sessions through the loaded model.
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(999);
    let mut routed = 0usize;
    let mut correct = 0usize;
    println!("\nrouting fresh sessions:");
    for (label, profile) in Profile::ALL.iter().enumerate() {
        let chain = profile.chain();
        // Which segment does this profile's training majority sit in?
        let expected = db
            .iter()
            .filter(|(_, _, l)| *l == Some(label as u32))
            .filter_map(|(i, _, _)| outcome.best_cluster[i])
            .next();
        for _ in 0..10 {
            let mut pages = vec![Symbol(0)];
            while pages.len() < 50 {
                let next = chain.sample_next(&pages, &mut rng);
                pages.push(next);
            }
            let hits = model.assign(&pages);
            routed += 1;
            if hits.first().map(|&(k, _)| k) == expected {
                correct += 1;
            }
        }
    }
    println!("{correct}/{routed} fresh sessions routed to their profile's segment");
}
