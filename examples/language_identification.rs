//! Language clustering — the paper's Table 4 experiment.
//!
//! Clusters space-stripped sentences in English, romanized Chinese and
//! romanized Japanese (plus German/Russian noise) purely by letter
//! statistics, then reports per-language precision/recall and shows which
//! letter patterns each discovered cluster keys on.
//!
//! ```sh
//! cargo run --release --example language_identification
//! ```

use cluseq::prelude::*;

fn main() {
    let spec = LanguageSpec {
        sentences_per_language: 200,
        noise_sentences: 33,
        words_per_sentence: (20, 40),
        ..Default::default()
    };
    let db = spec.generate();
    println!(
        "corpus: {} sentences ({} per language + {} noise), alphabet {}",
        db.len(),
        spec.sentences_per_language,
        spec.noise_sentences,
        db.alphabet().len()
    );

    let params = CluseqParams::default()
        .with_initial_clusters(3)
        .with_significance(10)
        .with_max_depth(4)
        .with_seed(6);
    let (outcome, elapsed) = Stopwatch::time(|| Cluseq::new(params).run(&db));
    println!(
        "CLUSEQ: {} clusters in {:?} (final t = {:.2})\n",
        outcome.cluster_count(),
        elapsed,
        outcome.final_t()
    );

    let confusion = Confusion::new(
        &db.labels(),
        &outcome.membership_lists(),
        MatchStrategy::Hungarian,
    );

    // Table 4 layout.
    println!("{:<12} {:>12} {:>9}", "", "Precision %", "Recall %");
    for m in confusion.class_metrics() {
        let lang = Language::ALL[m.class as usize];
        println!(
            "{:<12} {:>12.0} {:>9.0}",
            lang.name(),
            m.precision * 100.0,
            m.recall * 100.0
        );
    }

    // Peek inside each matched cluster's model: its most confident
    // two-letter contexts, which should be recognizably language-specific
    // (the paper: English "th"/"he"; Japanese CV alternation).
    println!("\nmost confident digraph continuations per cluster:");
    for m in confusion.class_metrics() {
        let Some(k) = m.cluster else { continue };
        let cluster = &outcome.clusters[k];
        let mut best: Vec<(String, f64)> = Vec::new();
        for a in db.alphabet().symbols() {
            for b in db.alphabet().symbols() {
                let p = cluster.pst.raw_predict(&[a], b);
                let count = cluster.pst.segment_count(&[a]);
                if count >= 100 && p > 0.3 {
                    best.push((
                        format!("{}{}", db.alphabet().name(a), db.alphabet().name(b)),
                        p,
                    ));
                }
            }
        }
        best.sort_by(|x, y| y.1.total_cmp(&x.1));
        best.truncate(6);
        let rendered: Vec<String> = best
            .iter()
            .map(|(g, p)| format!("{g} ({:.0}%)", p * 100.0))
            .collect();
        println!(
            "  {:<10} -> {}",
            Language::ALL[m.class as usize].name(),
            rendered.join(", ")
        );
    }
}
