//! Anomaly detection with CLUSEQ — served as a query type.
//!
//! CLUSEQ's similarity threshold separates clustered sequences from
//! outliers automatically. This example trains on a clean
//! system-trace-like workload (three behavioural profiles), freezes the
//! model, stands up an in-process serve daemon, and streams a mix of
//! normal and anomalous traces through the binary protocol's `ANOMALY`
//! query — the "system traces" use case from the paper's introduction,
//! in the shape a production deployment would run it.
//!
//! ```sh
//! cargo run --release --example anomaly_detection [-- --threshold LN_T]
//! ```
//!
//! `--threshold` overrides the trained decision boundary `ln(t)` per
//! query (the `ANOMALY` frame carries an optional threshold): lower it
//! to accept more traces as normal, raise it to flag more as anomalous.

use cluseq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let threshold: Option<f64> = {
        let args: Vec<String> = std::env::args().collect();
        args.iter().position(|a| a == "--threshold").map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("--threshold needs a number (a ln-similarity bound)");
                    std::process::exit(2);
                })
        })
    };

    // Training data: three "normal" behavioural profiles, no noise.
    let spec = SyntheticSpec {
        sequences: 240,
        clusters: 3,
        avg_len: 120,
        alphabet: 60,
        outlier_fraction: 0.0,
        seed: 77,
    };
    let db = spec.generate();

    let params = CluseqParams::default()
        .with_initial_clusters(3)
        .with_significance(10)
        .with_max_depth(6)
        .with_seed(5);
    let outcome = Cluseq::new(params).run(&db);
    println!(
        "trained: {} behaviour profiles, decision threshold ln(t) = {:.1}",
        outcome.cluster_count(),
        outcome.final_log_t
    );

    // Freeze the model and put it behind the daemon, exactly as a
    // deployment would: snapshot to disk, load, serve.
    let model_path = std::env::temp_dir().join(format!(
        "cluseq_example_anomaly_{}.cseq",
        std::process::id()
    ));
    let mut file = std::fs::File::create(&model_path).expect("create model snapshot");
    SavedModel::from_outcome(&outcome)
        .save(&mut file)
        .expect("save model snapshot");
    drop(file);
    let model =
        ServeModel::load(&model_path, None, ScanKernel::Compiled, 1).expect("load model snapshot");
    let server =
        Server::start(model, None, &ServeConfig::default(), None).expect("start serve daemon");
    println!("serving on {} (binary protocol + HTTP)", server.addr());
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    // Test stream: fresh normal traces (from the planted models) and two
    // kinds of anomaly — uniform noise, and shuffles of real traces
    // (identical symbol composition, destroyed order).
    let mut rng = StdRng::seed_from_u64(123);
    let mut tp = 0usize; // anomaly flagged as anomaly
    let mut fn_ = 0usize;
    let mut tn = 0usize; // normal accepted as normal
    let mut fp = 0usize;

    let mut verdict = |seq: &[Symbol]| -> bool {
        match client.anomaly(seq, threshold).expect("ANOMALY query") {
            cluseq::core::serve::protocol::Response::Anomaly { anomalous, .. } => anomalous,
            other => panic!("unexpected response {other:?}"),
        }
    };

    for round in 0..50 {
        let model = ClusterModel::new(60, 77u64.wrapping_add((round % 3) * 0x51ED));
        let normal = model.sample_sequence(120, &mut rng);
        if verdict(normal.symbols()) {
            fp += 1;
        } else {
            tn += 1;
        }

        let anomaly = if round % 2 == 0 {
            cluseq::datagen::outliers::random_sequence(60, 120, &mut rng)
        } else {
            cluseq::datagen::outliers::shuffled_sequence(&normal, &mut rng)
        };
        if verdict(anomaly.symbols()) {
            tp += 1;
        } else {
            fn_ += 1;
        }
    }

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_file(&model_path);

    if let Some(t) = threshold {
        println!("\n(using overridden threshold ln(t) = {t:.1})");
    }
    println!("\n           flagged   accepted");
    println!("anomalies  {tp:>7}   {fn_:>8}");
    println!("normals    {fp:>7}   {tn:>8}");
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    println!(
        "\ndetection precision {:.0}%, recall {:.0}%",
        precision * 100.0,
        recall * 100.0
    );
    println!(
        "(shuffled traces keep the exact symbol histogram — a composition-\n\
         based detector cannot flag them; CLUSEQ's sequential model can)"
    );
}
