//! Anomaly detection with CLUSEQ — using the outlier boundary as a
//! sequence anomaly detector.
//!
//! CLUSEQ's similarity threshold separates clustered sequences from
//! outliers automatically. This example trains on a clean system-trace-like
//! workload (three behavioural profiles), then streams a mix of normal and
//! anomalous traces through [`CluseqOutcome::assign_new`] and reports
//! detection quality — the "system traces" use case from the paper's
//! introduction.
//!
//! ```sh
//! cargo run --release --example anomaly_detection
//! ```

use cluseq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Training data: three "normal" behavioural profiles, no noise.
    let spec = SyntheticSpec {
        sequences: 240,
        clusters: 3,
        avg_len: 120,
        alphabet: 60,
        outlier_fraction: 0.0,
        seed: 77,
    };
    let db = spec.generate();

    let params = CluseqParams::default()
        .with_initial_clusters(3)
        .with_significance(10)
        .with_max_depth(6)
        .with_seed(5);
    let outcome = Cluseq::new(params).run(&db);
    println!(
        "trained: {} behaviour profiles, decision threshold ln(t) = {:.1}",
        outcome.cluster_count(),
        outcome.final_log_t
    );

    // Test stream: fresh normal traces (from the planted models) and two
    // kinds of anomaly — uniform noise, and shuffles of real traces
    // (identical symbol composition, destroyed order).
    let mut rng = StdRng::seed_from_u64(123);
    let mut tp = 0usize; // anomaly flagged as anomaly
    let mut fn_ = 0usize;
    let mut tn = 0usize; // normal accepted as normal
    let mut fp = 0usize;

    for round in 0..50 {
        let model = ClusterModel::new(60, 77u64.wrapping_add((round % 3) * 0x51ED));
        let normal = model.sample_sequence(120, &mut rng);
        if outcome.assign_new(normal.symbols()).is_empty() {
            fp += 1;
        } else {
            tn += 1;
        }

        let anomaly = if round % 2 == 0 {
            cluseq::datagen::outliers::random_sequence(60, 120, &mut rng)
        } else {
            cluseq::datagen::outliers::shuffled_sequence(&normal, &mut rng)
        };
        if outcome.assign_new(anomaly.symbols()).is_empty() {
            tp += 1;
        } else {
            fn_ += 1;
        }
    }

    println!("\n           flagged   accepted");
    println!("anomalies  {tp:>7}   {fn_:>8}");
    println!("normals    {fp:>7}   {tn:>8}");
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    println!(
        "\ndetection precision {:.0}%, recall {:.0}%",
        precision * 100.0,
        recall * 100.0
    );
    println!(
        "(shuffled traces keep the exact symbol histogram — a composition-\n\
         based detector cannot flag them; CLUSEQ's sequential model can)"
    );
}
