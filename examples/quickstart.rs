//! Quickstart: cluster a small synthetic sequence database and inspect the
//! result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cluseq::prelude::*;

fn main() {
    // 1. Get a sequence database. Here: 300 sequences over 100 symbols,
    //    drawn from 5 planted generative models, plus 5% random noise.
    let db = SyntheticSpec {
        sequences: 300,
        clusters: 5,
        avg_len: 150,
        alphabet: 100,
        outlier_fraction: 0.05,
        seed: 9,
    }
    .generate();
    println!(
        "database: {} sequences, alphabet {}, avg length {:.0}",
        db.len(),
        db.alphabet().len(),
        db.avg_len()
    );

    // 2. Configure CLUSEQ. Every knob has a paper-faithful default; the
    //    three that matter most are k (initial clusters — the algorithm
    //    adapts it), c (significance), and t (similarity threshold —
    //    adjusted automatically).
    let params = CluseqParams::default()
        .with_initial_clusters(1) // start from a single cluster on purpose
        .with_significance(10)
        .with_max_depth(6)
        .with_seed(4);

    // 3. Run.
    let (outcome, elapsed) = Stopwatch::time(|| Cluseq::new(params).run(&db));
    println!(
        "clustering: {} clusters after {} iterations in {:?} (final t = {:.1})",
        outcome.cluster_count(),
        outcome.iterations,
        elapsed,
        outcome.final_t()
    );

    // 4. Inspect the iteration history — watch the cluster count adapt.
    println!("\niteration history:");
    for h in &outcome.history {
        println!(
            "  iter {:>2}: +{} new, -{} consolidated -> {:>3} clusters, {:>4} membership changes",
            h.iteration,
            h.new_clusters,
            h.removed_clusters,
            h.clusters_at_end,
            h.membership_changes
        );
    }

    // 5. Since this database carries ground-truth labels, score the result.
    let confusion = Confusion::new(
        &db.labels(),
        &outcome.membership_lists(),
        MatchStrategy::Hungarian,
    );
    println!(
        "\nquality: {:.1}% correctly labeled, precision {:.2}, recall {:.2}",
        confusion.accuracy() * 100.0,
        confusion.macro_precision(),
        confusion.macro_recall()
    );

    // 6. Classify a brand-new sequence against the discovered clusters.
    let fresh = ClusterModel::new(100, 9u64.wrapping_add(2 * 0x51ED)) // planted cluster 2's model
        .sample_sequence(150, &mut rand_rng());
    let ranked = outcome.classify(fresh.symbols());
    let (best, sim) = ranked[0];
    println!(
        "\na fresh sequence from planted cluster 2 lands in cluster {best} \
         (log-similarity {:.1}, segment [{}, {}))",
        sim.log_sim, sim.start, sim.end
    );
}

fn rand_rng() -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(12345)
}
