//! Integration tests for the comparison models, including the qualitative
//! claims the paper makes about their weaknesses.

use cluseq::baselines::{
    block_edit_distance, edit_distance, k_medoids, qgram::qgram_cluster, HmmClustering,
};
use cluseq::prelude::*;

fn spec(seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        sequences: 80,
        clusters: 4,
        avg_len: 80,
        alphabet: 30,
        outlier_fraction: 0.0,
        seed,
    }
}

fn accuracy(db: &SequenceDatabase, assignment: &[Option<usize>]) -> f64 {
    let k = assignment
        .iter()
        .flatten()
        .copied()
        .max()
        .map_or(0, |m| m + 1);
    let mut clusters = vec![Vec::new(); k];
    for (i, a) in assignment.iter().enumerate() {
        if let Some(a) = a {
            clusters[*a].push(i);
        }
    }
    Confusion::new(&db.labels(), &clusters, MatchStrategy::Hungarian).accuracy()
}

#[test]
fn qgram_clustering_beats_chance_on_separable_data() {
    let db = spec(1).generate();
    let a = qgram_cluster(&db, 3, 4, 20, 5);
    let acc = accuracy(&db, &a);
    assert!(acc > 0.6, "q-gram accuracy {acc}");
}

#[test]
fn hmm_clustering_beats_chance_on_separable_data() {
    // Clusters that differ in symbol composition (order-0 structure) —
    // squarely what a small HMM's emission distributions capture.
    use cluseq::datagen::MarkovChain;
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(2);
    let mut db = SequenceDatabase::new(Alphabet::synthetic(8));
    for cluster in 0..3u32 {
        let mut chain = MarkovChain::new(8, 0);
        let mut dist = [0.02f64; 8];
        // Three heavy symbols per cluster, disjoint across clusters.
        for j in 0..3 {
            dist[(cluster as usize * 3 + j) % 8] += 0.86 / 3.0;
        }
        let total: f64 = dist.iter().sum();
        chain.set(&[], dist.iter().map(|d| d / total).collect());
        for _ in 0..12 {
            db.push_labeled(chain.sample_sequence(60, &mut rng), Some(cluster));
        }
    }
    let a = HmmClustering {
        states: 4,
        em_rounds: 5,
        bw_iters: 6,
        seed: 3,
    }
    .cluster(&db, 3);
    let acc = accuracy(&db, &a);
    assert!(acc > 0.6, "HMM accuracy {acc}");
}

#[test]
fn edit_distance_clustering_works_when_global_alignment_suffices() {
    // Edit distance needs globally alignable families: mutated copies of a
    // per-cluster prototype. (On CLUSEQ's statistical workloads — distinct
    // random walks from a shared model — ED genuinely fails, which is the
    // paper's Table 2 finding.)
    use cluseq::datagen::outliers::random_sequence;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(4);
    let mut db = SequenceDatabase::new(Alphabet::synthetic(10));
    for cluster in 0..3u32 {
        let prototype = random_sequence(10, 50, &mut rng);
        for _ in 0..10 {
            // 10% point mutations.
            let mutated: Vec<Symbol> = prototype
                .iter()
                .map(|s| {
                    if rng.gen::<f64>() < 0.1 {
                        Symbol(rng.gen_range(0..10) as u16)
                    } else {
                        s
                    }
                })
                .collect();
            db.push_labeled(Sequence::new(mutated), Some(cluster));
        }
    }
    let a = k_medoids(
        db.len(),
        3,
        |i, j| edit_distance(db.sequence(i).symbols(), db.sequence(j).symbols()) as f64,
        15,
        6,
    );
    let acc = accuracy(&db, &a);
    assert!(acc > 0.8, "edit-distance accuracy {acc}");
}

/// The paper's §1 motivating failure: edit distance cannot tell a block
/// swap from an unrelated sequence, but block edit distance and CLUSEQ
/// both can.
#[test]
fn block_swaps_fool_edit_distance_but_not_block_edit() {
    let mut alphabet = Alphabet::new();
    let x = Sequence::intern_str(&mut alphabet, "aaaabbb");
    let y = Sequence::intern_str(&mut alphabet, "bbbaaaa");
    let z = Sequence::intern_str(&mut alphabet, "abcdefg");

    let ed_xy = edit_distance(x.symbols(), y.symbols());
    let ed_xz = edit_distance(x.symbols(), z.symbols());
    assert_eq!(ed_xy, ed_xz, "the paper's anomaly: both are 6");

    let bed_xy = block_edit_distance(x.symbols(), y.symbols(), 2);
    let bed_xz = block_edit_distance(x.symbols(), z.symbols(), 2);
    assert!(bed_xy < bed_xz, "block edit fixes it: {bed_xy} < {bed_xz}");
}

/// CLUSEQ distinguishes order-sensitive structure that q-grams blur: two
/// families over the *same* symbol composition, differing only in
/// transition order.
#[test]
fn cluseq_beats_qgrams_on_order_only_differences() {
    // Family A alternates ab; family B alternates ba-pairs (aabb): both
    // have identical unigram composition and heavily overlapping 2-gram
    // sets read in windows, but very different transition structure.
    let mut texts: Vec<(String, u32)> = Vec::new();
    for _ in 0..20 {
        texts.push(("ab".repeat(30), 0));
        texts.push(("aabb".repeat(15), 1));
    }
    let mut db = SequenceDatabase::new(Alphabet::from_chars("ab".chars()));
    for (t, label) in &texts {
        let seq = Sequence::parse_str(db.alphabet(), t).unwrap();
        db.push_labeled(seq, Some(*label));
    }

    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(2)
            .with_significance(5)
            .with_max_depth(4)
            .with_seed(9),
    )
    .run(&db);
    let cluseq_acc = Confusion::new(
        &db.labels(),
        &outcome.membership_lists(),
        MatchStrategy::Hungarian,
    )
    .accuracy();

    // q = 1 sees identical profiles; even q = 2 overlaps substantially.
    let q1 = accuracy(&db, &qgram_cluster(&db, 1, 2, 20, 5));
    assert!(
        cluseq_acc > 0.9,
        "CLUSEQ should nail order-only structure: {cluseq_acc}"
    );
    assert!(
        q1 < 0.75,
        "unigram profiles cannot separate identical compositions: {q1}"
    );
}

#[test]
fn all_baselines_produce_total_assignments() {
    let db = spec(7).generate();
    for a in [
        qgram_cluster(&db, 3, 4, 10, 1),
        HmmClustering::default().cluster(&db, 4),
    ] {
        assert_eq!(a.len(), db.len());
        assert!(a.iter().all(|x| x.is_some()), "baselines assign everything");
    }
}
