//! Fault-injection suite: checkpoint writes survive injected I/O failure
//! at every byte, torn renames, and short writes without ever exposing a
//! partial file at the final path; checkpoint and model loads survive
//! truncation, bit flips, and hostile headers without panicking.
//!
//! The write-side failpoints come from [`FailPlan`] /[`FailingWriter`]:
//! `error_after(k)` kills the stream at exactly byte `k`, `short_writes`
//! fragments every `write` call, and `torn_rename` simulates the process
//! dying between the temp-file fsync and the rename. The invariant under
//! all of them: the final `*.ckpt` path either holds the previous complete
//! checkpoint or nothing — never a torn file — and the next attempt
//! succeeds cleanly.

use std::fs;
use std::path::{Path, PathBuf};

use cluseq::core::persist::SavedModel;
use cluseq::prelude::*;

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn workload() -> SequenceDatabase {
    SyntheticSpec {
        sequences: 24,
        clusters: 2,
        avg_len: 30,
        alphabet: 8,
        outlier_fraction: 0.0,
        seed: 9,
    }
    .generate()
}

fn small_params(dir: &Path) -> CluseqParams {
    CluseqParams::default()
        .with_initial_clusters(2)
        .with_significance(4)
        .with_max_depth(4)
        .with_max_iterations(4)
        .with_seed(3)
        .with_checkpoints(dir, 1)
}

/// A genuine checkpoint from a real (tiny) run, plus its serialized bytes.
fn sample_checkpoint(name: &str) -> (Checkpoint, Vec<u8>) {
    let dir = tmpdir(name);
    let db = workload();
    Cluseq::new(small_params(&dir)).run(&db);
    let path = Checkpoint::latest_in(&dir)
        .expect("scan")
        .expect("a checkpoint was written");
    let bytes = fs::read(path).expect("read checkpoint");
    let ckpt = Checkpoint::load(&mut bytes.as_slice()).expect("checkpoint loads");
    (ckpt, bytes)
}

fn sample_model() -> (SavedModel, Vec<u8>) {
    let outcome =
        Cluseq::new(small_params(Path::new("unused")).without_checkpoints()).run(&workload());
    let model = SavedModel::from_outcome(&outcome);
    let mut bytes = Vec::new();
    model.save(&mut bytes).expect("Vec write cannot fail");
    (model, bytes)
}

/// Byte offsets to probe: exhaustive while the blob is small, strided
/// (but never skipping the header region) when it grows.
fn probe_offsets(len: usize) -> Vec<usize> {
    let stride = (len / 4096).max(1);
    let mut offsets: Vec<usize> = (0..len.min(512)).collect();
    offsets.extend((512..len).step_by(stride));
    offsets
}

// ---- write-side failpoints ---------------------------------------------

#[test]
fn injected_write_errors_never_leave_a_partial_file() {
    let (ckpt, bytes) = sample_checkpoint("inject-write");
    let dir = tmpdir("inject-write-out");
    let path = dir.join("cluseq-000001.ckpt");

    for k in probe_offsets(bytes.len()) {
        let plan = FailPlan::error_after(k as u64);
        let err = ckpt
            .write_atomic_with(&path, &plan)
            .expect_err("a stream cut at byte {k} cannot succeed");
        assert!(
            err.to_string().contains("injected"),
            "byte {k}: unexpected error {err}"
        );
        assert!(
            !path.exists(),
            "byte {k}: a partial file reached the final path"
        );
        let leftovers: Vec<_> = fs::read_dir(&dir).expect("scan").collect();
        assert!(
            leftovers.is_empty(),
            "byte {k}: graceful failure must clean up its temp file"
        );
    }

    // After any number of failures, a clean attempt succeeds and the file
    // round-trips.
    let written = ckpt.write_atomic(&path).expect("clean write succeeds");
    assert_eq!(written, bytes.len() as u64, "logical size is the blob size");
    let reread = Checkpoint::load_path(&path).expect("reloads");
    assert_eq!(reread.completed, ckpt.completed);
}

#[test]
fn a_failed_write_preserves_the_previous_checkpoint() {
    let (ckpt, bytes) = sample_checkpoint("inject-preserve");
    let dir = tmpdir("inject-preserve-out");
    let path = dir.join("cluseq-000001.ckpt");

    ckpt.write_atomic(&path).expect("initial write");
    let before = fs::read(&path).expect("read initial");

    for k in [0usize, 1, 7, bytes.len() / 2, bytes.len() - 1] {
        ckpt.write_atomic_with(&path, &FailPlan::error_after(k as u64))
            .expect_err("injected failure");
        assert_eq!(
            fs::read(&path).expect("still readable"),
            before,
            "byte {k}: the previous checkpoint must survive a failed rewrite"
        );
    }
}

#[test]
fn short_writes_still_produce_a_complete_checkpoint() {
    let (ckpt, bytes) = sample_checkpoint("short-writes");
    let dir = tmpdir("short-writes-out");
    for chunk in [1usize, 3, 7, 64] {
        let path = dir.join("cluseq-000001.ckpt");
        let written = ckpt
            .write_atomic_with(&path, &FailPlan::short_writes(chunk))
            .expect("short writes make progress");
        assert_eq!(written, bytes.len() as u64, "chunk {chunk}");
        assert_eq!(
            fs::read(&path).expect("read"),
            bytes,
            "chunk {chunk}: fragmented writes must still be byte-faithful"
        );
        fs::remove_file(&path).expect("reset");
    }
}

#[test]
fn a_torn_rename_leaves_only_the_temp_file() {
    let (ckpt, _) = sample_checkpoint("torn");
    let dir = tmpdir("torn-out");
    let path = dir.join("cluseq-000001.ckpt");

    let err = ckpt
        .write_atomic_with(&path, &FailPlan::torn_rename())
        .expect_err("the rename was torn");
    assert!(err.to_string().contains("before rename"), "{err}");
    assert!(!path.exists(), "no final file after a torn rename");

    // The temp file is the simulated crash debris; the scanner must not
    // mistake it for a checkpoint, and recovery is a plain re-write.
    assert_eq!(Checkpoint::latest_in(&dir).expect("scan"), None);
    ckpt.write_atomic(&path).expect("recovery write");
    assert_eq!(
        Checkpoint::latest_in(&dir).expect("scan").as_deref(),
        Some(path.as_path())
    );
    Checkpoint::load_path(&path).expect("recovered checkpoint loads");
}

// ---- read-side faults --------------------------------------------------

#[test]
fn truncation_at_any_probed_length_is_an_error_never_a_panic() {
    let (_, ckpt_bytes) = sample_checkpoint("trunc");
    let (_, model_bytes) = sample_model();

    for len in probe_offsets(ckpt_bytes.len()) {
        assert!(
            Checkpoint::load(&mut &ckpt_bytes[..len]).is_err(),
            "checkpoint prefix of {len} bytes must not load"
        );
    }
    for len in probe_offsets(model_bytes.len()) {
        assert!(
            SavedModel::load(&mut &model_bytes[..len]).is_err(),
            "model prefix of {len} bytes must not load"
        );
    }
}

#[test]
fn injected_read_errors_surface_as_io_never_a_panic() {
    let (_, bytes) = sample_checkpoint("read-fault");
    for k in probe_offsets(bytes.len()) {
        let mut reader = FailingReader::new(bytes.as_slice(), FailPlan::error_after(k as u64));
        Checkpoint::load(&mut reader).expect_err("a cut read stream cannot load");
    }
}

/// Bit flips anywhere in the stream must be *handled*: most flips are
/// detected as errors, a few (e.g. in stored wall-clock timings or float
/// payloads) decode to different but structurally valid data — either way
/// the loader must return, not panic or balloon memory on a hostile
/// length.
#[test]
fn bit_flips_never_panic_the_loaders() {
    let (_, ckpt_bytes) = sample_checkpoint("flips");
    let (_, model_bytes) = sample_model();

    for (what, bytes) in [("checkpoint", ckpt_bytes), ("model", model_bytes)] {
        for i in probe_offsets(bytes.len()) {
            for mask in [0x01u8, 0x80] {
                let mut mutated = bytes.clone();
                mutated[i] ^= mask;
                match what {
                    "checkpoint" => {
                        let _ = Checkpoint::load(&mut mutated.as_slice());
                    }
                    _ => {
                        let _ = SavedModel::load(&mut mutated.as_slice());
                    }
                }
            }
        }
    }
}

// ---- header validation -------------------------------------------------

#[test]
fn foreign_magic_is_named_in_the_error() {
    let (_, mut ckpt_bytes) = sample_checkpoint("magic");
    ckpt_bytes[..4].copy_from_slice(b"XXXX");
    let err = Checkpoint::load(&mut ckpt_bytes.as_slice()).expect_err("bad magic");
    assert!(
        err.to_string().contains("magic"),
        "undescriptive error: {err}"
    );

    let (_, mut model_bytes) = sample_model();
    model_bytes[..4].copy_from_slice(b"XXXX");
    let err = SavedModel::load(&mut model_bytes.as_slice()).expect_err("bad magic");
    assert!(
        err.to_string().contains("magic"),
        "undescriptive error: {err}"
    );
}

#[test]
fn future_versions_are_refused_with_the_version_number() {
    let (_, mut ckpt_bytes) = sample_checkpoint("version");
    ckpt_bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    let err = Checkpoint::load(&mut ckpt_bytes.as_slice()).expect_err("future version");
    assert!(err.to_string().contains("99"), "undescriptive error: {err}");

    let (_, mut model_bytes) = sample_model();
    model_bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    let err = SavedModel::load(&mut model_bytes.as_slice()).expect_err("future version");
    assert!(err.to_string().contains("99"), "undescriptive error: {err}");
}

/// A hostile stream advertising an absurd element count must fail fast on
/// bounded reads instead of allocating what the length field promises.
#[test]
fn hostile_lengths_do_not_allocate() {
    // CCKP magic + version 1, then a guard block claiming u64::MAX
    // sequences and a giant alphabet, then nothing — the loader must
    // reject or hit EOF without reserving gigabytes.
    let mut hostile = Vec::new();
    hostile.extend_from_slice(b"CCKP");
    hostile.extend_from_slice(&1u32.to_le_bytes());
    hostile.extend_from_slice(&u64::MAX.to_le_bytes());
    hostile.extend_from_slice(&u32::MAX.to_le_bytes());
    Checkpoint::load(&mut hostile.as_slice()).expect_err("hostile header must not load");
}
