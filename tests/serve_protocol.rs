//! Serve-protocol robustness suite: the frame codec round-trips under
//! proptest, and the daemon survives hostile bytes — truncation at every
//! byte of a valid frame, oversized length prefixes (rejected from the
//! header alone, before any payload allocation), garbage magic, unknown
//! opcodes, and slow-loris stalls that must hit the read timeout. In
//! every case the server answers a well-formed error frame or closes the
//! connection; it never panics and never hangs.

use std::fs;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use proptest::prelude::*;

use cluseq::core::serve::protocol::{
    errcode, parse_header, read_frame, ClusterScore, ProtoError, Request, Response, FRAME_MAGIC,
    MAX_FRAME_LEN,
};
use cluseq::prelude::*;

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Trains a tiny model and writes it as a CSEQ snapshot.
fn model_file(dir: &Path) -> PathBuf {
    let db = SyntheticSpec {
        sequences: 30,
        clusters: 2,
        avg_len: 40,
        alphabet: 8,
        outlier_fraction: 0.0,
        seed: 11,
    }
    .generate();
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(2)
            .with_significance(4)
            .with_max_depth(5)
            .with_max_iterations(5)
            .with_seed(3),
    )
    .run(&db);
    let path = dir.join("model.cseq");
    let mut f = fs::File::create(&path).expect("create model file");
    SavedModel::from_outcome(&outcome)
        .save(&mut f)
        .expect("save model");
    path
}

fn start_server(model_path: &Path, frame_timeout: Duration) -> ServerHandle {
    let model = ServeModel::load(model_path, None, ScanKernel::Compiled, 1).expect("load model");
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        max_batch: 16,
        kernel: ScanKernel::Compiled,
        frame_timeout,
        watch_sighup: false,
    };
    Server::start(model, None, &config, None).expect("start server")
}

/// Reads whatever the server sends until it closes, bounded by a client
/// read timeout so a hung server fails the test instead of wedging it.
fn read_until_close(stream: &mut TcpStream) -> Vec<u8> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    out
}

/// Asserts the server's reaction to hostile bytes is well-formed: either
/// a clean close (nothing sent) or a stream of decodable frames.
fn assert_error_frame_or_close(bytes: &[u8]) -> Option<Response> {
    if bytes.is_empty() {
        return None;
    }
    let mut cursor = bytes;
    let payload = read_frame(&mut cursor)
        .expect("server bytes must be a valid frame")
        .expect("non-empty response");
    Some(Response::decode_payload(&payload).expect("server frame must decode"))
}

// ---- proptest: the codec is total and round-trips ----------------------

// The vendored proptest is a minimal stub (ranges, tuples, vec, option,
// bool, map/flat_map/filter — no `any`, no `prop_oneof!`, no regex
// strings), so variant choice is a plain discriminant range mapped to
// the enum by hand.

fn arb_symbols() -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec((0u16..=u16::MAX).prop_map(Symbol), 0..64)
}

/// Finite f64s across a wide range, including negatives (log-sims are
/// negative in practice).
fn arb_f64() -> impl Strategy<Value = f64> {
    -1.0e9f64..1.0e9
}

/// Printable-ASCII strings up to 80 bytes.
fn arb_text() -> impl Strategy<Value = String> {
    prop::collection::vec(0x20u8..0x7f, 0..80)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ASCII"))
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u8..6,
        arb_symbols(),
        prop::option::of(arb_f64()),
        arb_text(),
    )
        .prop_map(|(disc, seq, threshold, path)| match disc {
            0 => Request::Assign { seq },
            1 => Request::Score { seq },
            2 => Request::Anomaly { seq, threshold },
            3 => Request::Info,
            4 => Request::Swap { path },
            _ => Request::Shutdown,
        })
}

fn arb_hits() -> impl Strategy<Value = Vec<(u32, f64)>> {
    prop::collection::vec((0u32..=u32::MAX, arb_f64()), 0..16)
}

fn arb_scores() -> impl Strategy<Value = Vec<ClusterScore>> {
    prop::collection::vec(
        (0u32..=u32::MAX, arb_f64(), 0u32..=u32::MAX, 0u32..=u32::MAX).prop_map(
            |(slot, log_sim, start, end)| ClusterScore {
                slot,
                log_sim,
                start,
                end,
            },
        ),
        0..16,
    )
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        (0u8..6, 0u64..=u64::MAX / 2, prop::bool::ANY),
        (arb_hits(), arb_scores()),
        (arb_f64(), arb_f64(), prop::option::of(0u32..u32::MAX - 1)),
        (0u32..=u32::MAX, 0u16..=u16::MAX, arb_text()),
    )
        .prop_map(
            |(
                (disc, generation, anomalous),
                (hits, scores),
                (best_log_sim, threshold, best_slot),
                (clusters, code, message),
            )| match disc {
                0 => Response::Assign { generation, hits },
                1 => Response::Score { generation, scores },
                2 => Response::Anomaly {
                    generation,
                    anomalous,
                    best_log_sim,
                    threshold,
                    best_slot,
                },
                3 => Response::Info {
                    generation,
                    clusters,
                    alphabet: code as u32,
                    log_t: threshold,
                    kernel: disc,
                },
                4 => Response::Swapped {
                    generation,
                    clusters,
                },
                _ if anomalous => Response::ShuttingDown,
                _ => Response::Error { code, message },
            },
        )
}

proptest! {
    #[test]
    fn request_codec_round_trips(req in arb_request()) {
        let payload = req.encode_payload();
        prop_assert_eq!(Request::decode_payload(&payload).unwrap(), req);
    }

    #[test]
    fn response_codec_round_trips(resp in arb_response()) {
        let payload = resp.encode_payload();
        prop_assert_eq!(Response::decode_payload(&payload).unwrap(), resp);
    }

    /// Decoding is total: arbitrary bytes either decode or error, never
    /// panic — and a decode error on a truncated prefix of a valid
    /// payload is guaranteed.
    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in prop::collection::vec(0u8..=u8::MAX, 0..256)) {
        let _ = Request::decode_payload(&bytes);
        let _ = Response::decode_payload(&bytes);
    }

    #[test]
    fn every_truncation_of_a_request_fails_to_decode(req in arb_request()) {
        let payload = req.encode_payload();
        for cut in 0..payload.len() {
            prop_assert!(Request::decode_payload(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn oversized_headers_reject_without_payload(extra in MAX_FRAME_LEN..=u32::MAX) {
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&FRAME_MAGIC);
        header[4..].copy_from_slice(&extra.to_le_bytes());
        if extra > MAX_FRAME_LEN {
            prop_assert!(matches!(parse_header(&header), Err(ProtoError::Oversized(_))));
        } else {
            prop_assert!(parse_header(&header).is_ok());
        }
    }
}

// ---- live-server hostile input tests -----------------------------------

#[test]
fn truncation_at_every_byte_closes_cleanly() {
    let dir = tmpdir("serve-proto-trunc");
    let model = model_file(&dir);
    let server = start_server(&model, Duration::from_secs(5));
    let frame = Request::Assign {
        seq: vec![Symbol(0), Symbol(1), Symbol(2), Symbol(3)],
    }
    .encode_frame();
    for cut in 0..frame.len() {
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream.write_all(&frame[..cut]).expect("send prefix");
        // Half-close: the server sees EOF mid-frame.
        stream.shutdown(Shutdown::Write).expect("half-close");
        let reply = read_until_close(&mut stream);
        // EOF mid-frame is a clean close; a zero-byte prefix may also be
        // answered by nothing. No byte the server sends may be garbage.
        if let Some(resp) = assert_error_frame_or_close(&reply) {
            assert!(
                matches!(resp, Response::Error { .. }),
                "cut={cut}: non-error response {resp:?} to a truncated frame"
            );
        }
    }
    // The server survived all of it.
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    let (generation, _) = client.assign(&[Symbol(0), Symbol(1)]).expect("assign");
    assert_eq!(generation, 1);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_gets_error_frame() {
    let dir = tmpdir("serve-proto-oversize");
    let model = model_file(&dir);
    let server = start_server(&model, Duration::from_secs(5));
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut header = Vec::new();
    header.extend_from_slice(&FRAME_MAGIC);
    header.extend_from_slice(&u32::MAX.to_le_bytes());
    stream.write_all(&header).expect("send header");
    let reply = read_until_close(&mut stream);
    match assert_error_frame_or_close(&reply) {
        Some(Response::Error { code, .. }) => assert_eq!(code, errcode::OVERSIZED),
        other => panic!("expected OVERSIZED error frame, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn garbage_magic_gets_error_frame_or_http_reply() {
    let dir = tmpdir("serve-proto-magic");
    let model = model_file(&dir);
    let server = start_server(&model, Duration::from_secs(5));

    // Starts with the magic's first byte: stays on the binary path and
    // must get a BAD_MAGIC error frame.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream.write_all(b"CXXXAAAABBBB").expect("send");
    stream.shutdown(Shutdown::Write).unwrap();
    match assert_error_frame_or_close(&read_until_close(&mut stream)) {
        Some(Response::Error { code, .. }) => assert_eq!(code, errcode::BAD_MAGIC),
        other => panic!("expected BAD_MAGIC error frame, got {other:?}"),
    }

    // Arbitrary non-magic garbage lands on the HTTP facade: a well-formed
    // HTTP error, or a close — never a panic.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .write_all(b"\x01\x02\x03garbage\r\n\r\n")
        .expect("send");
    stream.shutdown(Shutdown::Write).unwrap();
    let reply = read_until_close(&mut stream);
    if !reply.is_empty() {
        assert!(
            reply.starts_with(b"HTTP/1.1 "),
            "garbage got a non-HTTP reply: {reply:?}"
        );
    }

    // Server is still fine.
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    client.info().expect("info after garbage");
    server.shutdown();
}

#[test]
fn slow_loris_partial_frame_hits_the_read_timeout() {
    let dir = tmpdir("serve-proto-loris");
    let model = model_file(&dir);
    let server = start_server(&model, Duration::from_millis(300));
    let started = std::time::Instant::now();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    // A valid header promising 100 bytes, then silence with the
    // connection held open.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&FRAME_MAGIC);
    bytes.extend_from_slice(&100u32.to_le_bytes());
    bytes.extend_from_slice(&[0u8; 10]);
    stream.write_all(&bytes).expect("send partial frame");
    let reply = read_until_close(&mut stream);
    let elapsed = started.elapsed();
    match assert_error_frame_or_close(&reply) {
        Some(Response::Error { code, .. }) => assert_eq!(code, errcode::TIMEOUT),
        None => {} // a plain close is also acceptable
        other => panic!("expected TIMEOUT error frame, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(8),
        "slow-loris held the connection {elapsed:?}; the timeout never fired"
    );
    server.shutdown();
}

#[test]
fn unknown_opcode_errors_but_connection_survives() {
    let dir = tmpdir("serve-proto-badop");
    let model = model_file(&dir);
    let server = start_server(&model, Duration::from_secs(5));
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Frame with an unknown opcode: framing is intact, so the server
    // answers an error frame and keeps the connection.
    let payload = [0x7Fu8, 1, 2, 3];
    let mut frame = Vec::new();
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    stream.write_all(&frame).expect("send bad opcode");
    let reply = read_frame(&mut stream).expect("read").expect("frame");
    match Response::decode_payload(&reply).expect("decode") {
        Response::Error { code, .. } => assert_eq!(code, errcode::BAD_OP),
        other => panic!("expected BAD_OP error, got {other:?}"),
    }

    // Same connection, now a well-formed INFO: still served.
    stream
        .write_all(&Request::Info.encode_frame())
        .expect("send info");
    let reply = read_frame(&mut stream).expect("read").expect("frame");
    assert!(matches!(
        Response::decode_payload(&reply).expect("decode"),
        Response::Info { generation: 1, .. }
    ));
    server.shutdown();
}

#[test]
fn malformed_payload_gets_malformed_error() {
    let dir = tmpdir("serve-proto-malformed");
    let model = model_file(&dir);
    let server = start_server(&model, Duration::from_secs(5));
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // An ASSIGN whose symbol count lies about the payload size.
    let mut payload = vec![0x01u8];
    payload.extend_from_slice(&(1u32 << 30).to_le_bytes());
    payload.extend_from_slice(&[0, 0]);
    let mut frame = Vec::new();
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    stream.write_all(&frame).expect("send lying frame");
    let reply = read_frame(&mut stream).expect("read").expect("frame");
    match Response::decode_payload(&reply).expect("decode") {
        Response::Error { code, .. } => assert_eq!(code, errcode::MALFORMED),
        other => panic!("expected MALFORMED error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn out_of_alphabet_symbols_get_symbol_range_error() {
    let dir = tmpdir("serve-proto-range");
    let model = model_file(&dir);
    let server = start_server(&model, Duration::from_secs(5));
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    let resp = client
        .request(&Request::Assign {
            seq: vec![Symbol(0), Symbol(60000)],
        })
        .expect("request");
    match resp {
        Response::Error { code, .. } => assert_eq!(code, errcode::SYMBOL_RANGE),
        other => panic!("expected SYMBOL_RANGE error, got {other:?}"),
    }
    // The same connection still serves valid queries.
    client.assign(&[Symbol(0)]).expect("valid assign");
    server.shutdown();
}
