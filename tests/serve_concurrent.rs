//! Concurrent-determinism suite: N client threads replay a fixed query
//! set against the daemon at `--threads` 1 and 4, under both scan
//! kernels, and every collected response must be bit-identical to the
//! offline `SavedModel::assign` / fresh `OnlineCluseq` answers — and
//! therefore identical across all four configurations. Batching
//! concurrent requests may change *when* a query is scored, never *what*
//! it returns.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cluseq::core::serve::protocol::ClusterScore;
use cluseq::prelude::*;

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn workload() -> SequenceDatabase {
    SyntheticSpec {
        sequences: 60,
        clusters: 3,
        avg_len: 60,
        alphabet: 10,
        outlier_fraction: 0.05,
        seed: 23,
    }
    .generate()
}

fn params() -> CluseqParams {
    CluseqParams::default()
        .with_initial_clusters(3)
        .with_significance(5)
        .with_max_depth(5)
        .with_max_iterations(6)
        .with_seed(7)
}

/// The fixed query set: every training sequence plus edge-case probes
/// (empty, single symbol, and a shuffled concatenation).
fn query_set(db: &SequenceDatabase) -> Vec<Vec<Symbol>> {
    let mut queries: Vec<Vec<Symbol>> = (0..db.len())
        .map(|i| db.sequence(i).symbols().to_vec())
        .collect();
    queries.push(Vec::new());
    queries.push(vec![Symbol(0)]);
    let mut mixed: Vec<Symbol> = db.sequence(0).symbols().to_vec();
    mixed.extend_from_slice(db.sequence(1).symbols());
    mixed.reverse();
    queries.push(mixed);
    queries
}

/// One query's expected answers, in comparable bit-exact form.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Expected {
    assign: Vec<(u32, u64)>,
    score: Vec<(u32, u64, u32, u32)>,
}

fn offline_expected(model: &SavedModel, queries: &[Vec<Symbol>]) -> Vec<Expected> {
    queries
        .iter()
        .map(|q| Expected {
            assign: model
                .assign(q)
                .into_iter()
                .map(|(k, sim)| (k as u32, sim.to_bits()))
                .collect(),
            score: model
                .classify(q)
                .into_iter()
                .map(|(k, s)| (k as u32, s.log_sim.to_bits(), s.start as u32, s.end as u32))
                .collect(),
        })
        .collect()
}

fn canonical_assign(hits: &[(u32, f64)]) -> Vec<(u32, u64)> {
    hits.iter().map(|(k, sim)| (*k, sim.to_bits())).collect()
}

fn canonical_score(scores: &[ClusterScore]) -> Vec<(u32, u64, u32, u32)> {
    scores
        .iter()
        .map(|s| (s.slot, s.log_sim.to_bits(), s.start, s.end))
        .collect()
}

/// Replays the query set from `n_clients` threads concurrently and
/// returns each client's collected (assign, score) answers in query
/// order.
fn replay(
    addr: std::net::SocketAddr,
    queries: &Arc<Vec<Vec<Symbol>>>,
    n_clients: usize,
) -> Vec<Vec<Expected>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_clients)
            .map(|c| {
                let queries = Arc::clone(queries);
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    // Stagger starting points so the batches interleave
                    // different queries from different clients.
                    let n = queries.len();
                    (0..n)
                        .map(|i| {
                            let q = &queries[(i + c) % n];
                            let (gen_a, hits) = client.assign(q).expect("assign");
                            let (gen_s, scores) = client.score(q).expect("score");
                            assert_eq!(gen_a, 1, "single-generation server");
                            assert_eq!(gen_s, 1, "single-generation server");
                            (
                                (i + c) % n,
                                Expected {
                                    assign: canonical_assign(&hits),
                                    score: canonical_score(&scores),
                                },
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let mut by_query = h.join().expect("client thread panicked");
                by_query.sort_by_key(|(i, _)| *i);
                by_query.into_iter().map(|(_, e)| e).collect()
            })
            .collect()
    })
}

fn model_file(dir: &Path, outcome: &CluseqOutcome) -> PathBuf {
    let path = dir.join("model.cseq");
    let mut f = fs::File::create(&path).expect("create model file");
    SavedModel::from_outcome(outcome)
        .save(&mut f)
        .expect("save model");
    path
}

#[test]
fn concurrent_batched_responses_are_bit_identical_across_configs() {
    let dir = tmpdir("serve-concurrent");
    let db = workload();
    let params = params();
    let outcome = Cluseq::new(params.clone()).run(&db);
    let model_path = model_file(&dir, &outcome);

    let mut f = fs::File::open(&model_path).expect("open model");
    let offline = SavedModel::load(&mut f).expect("load model");
    let queries = Arc::new(query_set(&db));
    let expected = offline_expected(&offline, &queries);

    // The online scorer agrees with the persisted model on joins: a fresh
    // OnlineCluseq (before any absorption) applies the same threshold to
    // the same similarity, so its `joined` is `assign` bit for bit.
    for q in queries.iter() {
        let mut online = OnlineCluseq::from_outcome(&outcome, &params, db.alphabet().len());
        let report = online.process(&Sequence::new(q.clone()));
        let online_joined: Vec<(u32, u64)> = report
            .joined
            .iter()
            .map(|(k, sim)| (*k as u32, sim.to_bits()))
            .collect();
        let offline_assign = &expected[queries.iter().position(|x| x == q).unwrap()].assign;
        assert_eq!(
            &online_joined, offline_assign,
            "OnlineCluseq and SavedModel disagree on {q:?}"
        );
    }

    for kernel in [ScanKernel::Interpreted, ScanKernel::Compiled] {
        for threads in [1usize, 4] {
            let model = ServeModel::load(&model_path, None, kernel, 1).expect("load serve model");
            let config = ServeConfig {
                addr: "127.0.0.1:0".into(),
                threads,
                max_batch: 8,
                kernel,
                frame_timeout: std::time::Duration::from_secs(5),
                watch_sighup: false,
            };
            let server = Server::start(model, None, &config, None).expect("start server");
            let collected = replay(server.addr(), &queries, 6);
            server.shutdown();
            for (client_id, answers) in collected.iter().enumerate() {
                assert_eq!(
                    answers, &expected,
                    "kernel={kernel} threads={threads} client={client_id}: \
                     served answers differ from offline SavedModel"
                );
            }
        }
    }
}

/// The HTTP facade routes through the same queue: a JSON /assign answer
/// must carry the same hits the binary protocol returns.
#[test]
fn http_facade_matches_binary_protocol() {
    use std::io::{Read, Write};

    let dir = tmpdir("serve-http-parity");
    let db = workload();
    let outcome = Cluseq::new(params()).run(&db);
    let model_path = model_file(&dir, &outcome);
    let model = ServeModel::load(&model_path, None, ScanKernel::Compiled, 1).expect("load model");
    let server = Server::start(model, None, &ServeConfig::default(), None).expect("start");

    let query: Vec<Symbol> = db.sequence(0).symbols().to_vec();
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    let (_, hits) = client.assign(&query).expect("binary assign");

    let body: Vec<String> = query.iter().map(|s| s.0.to_string()).collect();
    let body = body.join(" ");
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect http");
    write!(
        stream,
        "POST /assign HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .expect("send http");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .unwrap();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    let (head, json) = response.split_once("\r\n\r\n").expect("http split");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    assert!(
        json.contains("\"generation\":1"),
        "missing generation: {json}"
    );
    for (slot, _) in &hits {
        assert!(
            json.contains(&format!("\"slot\":{slot}")),
            "binary hit slot {slot} absent from JSON {json}"
        );
    }
    // Hit count matches: the JSON hits array has exactly as many objects.
    let json_hits = json.matches("\"slot\":").count();
    assert_eq!(json_hits, hits.len(), "hit count mismatch: {json}");
    server.shutdown();
}
