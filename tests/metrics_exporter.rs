//! Exporter suite: the `--metrics-addr` endpoint must serve valid
//! Prometheus text format (version 0.0.4) over plain HTTP, and its
//! `_total` series must be monotone across scrapes.
//!
//! The scrape goes over a raw [`TcpStream`] — no HTTP client library —
//! which doubles as a check that the hand-rolled HTTP/1.0 response is
//! well-formed enough for the simplest possible consumer.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cluseq::core::trace::Counter;
use cluseq::prelude::*;

fn workload() -> SequenceDatabase {
    SyntheticSpec {
        sequences: 90,
        clusters: 3,
        avg_len: 80,
        alphabet: 24,
        outlier_fraction: 0.05,
        seed: 41,
    }
    .generate()
}

fn scrape(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to exporter");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    (head.to_string(), body.to_string())
}

/// A metric name per the Prometheus data model: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parses text-format exposition into name → value, validating the
/// format as it goes: `# TYPE` precedes its samples, names are legal,
/// every value parses as a float.
fn parse_exposition(body: &str) -> HashMap<String, f64> {
    let mut typed: Vec<String> = Vec::new();
    let mut samples = HashMap::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("# TYPE carries a name");
            let kind = parts.next().expect("# TYPE carries a kind");
            assert!(valid_metric_name(name), "bad metric name {name:?}");
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ),
                "bad metric kind {kind:?}"
            );
            typed.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let name = series.split('{').next().unwrap();
        assert!(valid_metric_name(name), "bad sample name {name:?}");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|e| panic!("unparseable value in {line:?}: {e}"));
        // A sample's metric family must have been declared first. Histogram
        // samples append _bucket/_sum/_count to the declared family name.
        assert!(
            typed.iter().any(|t| name == t
                || name.strip_suffix("_bucket") == Some(t.as_str())
                || name.strip_suffix("_sum") == Some(t.as_str())
                || name.strip_suffix("_count") == Some(t.as_str())),
            "sample {name:?} has no preceding # TYPE"
        );
        samples.insert(series.to_string(), value);
    }
    assert!(!samples.is_empty(), "exposition carried no samples");
    samples
}

#[test]
fn exporter_serves_valid_prometheus_text_format() {
    let session = TraceSession::start(&TraceConfig {
        jsonl: None,
        metrics_addr: Some("127.0.0.1:0".to_string()),
    })
    .expect("start exporter");
    let addr = session.metrics_addr().expect("bound address");
    assert_ne!(addr.port(), 0, "port 0 must resolve to an ephemeral port");

    let db = workload();
    let runner = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(3)
            .with_significance(6)
            .with_max_depth(5)
            .with_max_iterations(4)
            .with_seed(9)
            .with_threads(2),
    );
    runner.run_traced(&db, &mut NoopObserver, Some(&session));

    let (head, body) = scrape(addr, "/metrics");
    let status = head.lines().next().expect("status line");
    assert!(
        status.starts_with("HTTP/1.0 200") || status.starts_with("HTTP/1.1 200"),
        "unexpected status line {status:?}"
    );
    assert!(
        head.to_ascii_lowercase()
            .contains("content-type: text/plain; version=0.0.4"),
        "missing Prometheus content type in {head:?}"
    );

    let first = parse_exposition(&body);
    for required in [
        "cluseq_phase_seconds_total",
        "cluseq_pairs_scored_total",
        "cluseq_pairs_pruned_total",
        "cluseq_clusters_live",
        "cluseq_threshold",
        "cluseq_iteration",
    ] {
        assert!(
            first.keys().any(|k| k.split('{').next() == Some(required)),
            "required family {required:?} absent from exposition"
        );
    }
    assert_eq!(
        first
            .iter()
            .find(|(k, _)| k.starts_with("cluseq_pairs_scored_total"))
            .map(|(_, v)| *v as u64),
        Some(session.counter(Counter::PairsScored)),
        "exposed counter must equal the registry"
    );

    // Monotonicity: every *_total series only grows as the run continues.
    runner.run_traced(&db, &mut NoopObserver, Some(&session));
    let (_, body2) = scrape(addr, "/metrics");
    let second = parse_exposition(&body2);
    let mut compared = 0;
    for (series, v1) in &first {
        if !series.split('{').next().unwrap().ends_with("_total") {
            continue;
        }
        let v2 = second
            .get(series)
            .unwrap_or_else(|| panic!("series {series:?} vanished between scrapes"));
        assert!(v2 >= v1, "counter {series:?} went backwards: {v1} -> {v2}");
        compared += 1;
    }
    assert!(compared > 0, "no _total series to compare");

    // Unknown paths get a 404 without killing the listener.
    let (head404, _) = scrape(addr, "/nope");
    assert!(
        head404.lines().next().unwrap().contains("404"),
        "unknown path should 404"
    );
    let (head_again, _) = scrape(addr, "/metrics");
    assert!(head_again.contains("200"), "listener must survive a 404");
}

/// Dropping the session must stop the listener and release the port.
#[test]
fn exporter_shuts_down_with_the_session() {
    let session = TraceSession::start(&TraceConfig {
        jsonl: None,
        metrics_addr: Some("127.0.0.1:0".to_string()),
    })
    .expect("start exporter");
    let addr = session.metrics_addr().expect("bound address");
    let (head, _) = scrape(addr, "/metrics");
    assert!(head.contains("200"));
    drop(session);
    // The accept thread is joined on drop, so a fresh connect must fail
    // (nothing is listening any more).
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "exporter port still open after session drop"
    );
}
