//! Golden regression test: a fixed seeded workload, clustered with fixed
//! parameters, must keep producing the exact outcome captured in
//! `tests/golden/synthetic_seed41.txt`.
//!
//! Everything in the chain is deterministic — the datagen PRNG, seeding,
//! the scan, threshold adjustment — so any diff here means an intentional
//! algorithm change (re-bless the snapshot and explain why in the PR) or
//! an accidental behaviour change (fix it). The threshold is stored as
//! raw `f64` bits: a one-ulp drift fails the test.
//!
//! The snapshot format is line-oriented:
//!
//! ```text
//! final_log_t_bits <u64>
//! iterations <n>
//! cluster <k> <member> <member> …
//! outliers <id> <id> …
//! ```
//!
//! To re-bless after an intentional change, run this test with
//! `BLESS_GOLDEN=1` and commit the rewritten snapshot.

use cluseq::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;

fn workload() -> SequenceDatabase {
    SyntheticSpec {
        sequences: 200,
        clusters: 4,
        avg_len: 140,
        alphabet: 80,
        outlier_fraction: 0.05,
        seed: 41,
    }
    .generate()
}

fn run() -> CluseqOutcome {
    Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(4)
            .with_significance(8)
            .with_max_depth(6)
            .with_max_iterations(15)
            .with_seed(13),
    )
    .run(&workload())
}

fn render(outcome: &CluseqOutcome) -> String {
    let mut s = String::new();
    writeln!(s, "final_log_t_bits {:016x}", outcome.final_log_t.to_bits()).unwrap();
    writeln!(s, "iterations {}", outcome.iterations).unwrap();
    for (k, members) in outcome.membership_lists().iter().enumerate() {
        write!(s, "cluster {k}").unwrap();
        for m in members {
            write!(s, " {m}").unwrap();
        }
        s.push('\n');
    }
    write!(s, "outliers").unwrap();
    for o in &outcome.outliers {
        write!(s, " {o}").unwrap();
    }
    s.push('\n');
    s
}

fn snapshot_path() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/cluseq; the snapshot lives with the
    // root-level tests it belongs to.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/synthetic_seed41.txt")
}

#[test]
fn clustering_matches_the_blessed_snapshot() {
    let got = render(&run());
    let path = snapshot_path();
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(&path, &got).expect("write snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
    assert_eq!(
        got, want,
        "outcome diverged from the golden snapshot; if the change is \
         intentional, re-bless with BLESS_GOLDEN=1 and justify it in the PR"
    );
}

#[test]
fn golden_run_is_reproducible_within_a_process() {
    // Guards the premise of the snapshot: two in-process runs agree
    // exactly, so a snapshot diff can only come from a code change.
    assert_eq!(render(&run()), render(&run()));
}
