//! Serialization property suite: on arbitrary real workloads and
//! parameter mixes, both on-disk formats round-trip losslessly —
//! `save -> load -> save` reproduces the original byte stream exactly.
//!
//! Byte-identity of the second save is a stronger check than structural
//! equality of the loaded value: it proves the decoder read every field
//! the encoder wrote (nothing defaulted, nothing reordered, no precision
//! lost), which is what the crash-recovery guarantee leans on.

use std::fs;
use std::path::PathBuf;

use cluseq::prelude::*;
use proptest::prelude::*;

fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("roundtrip")
        .join(tag);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn arb_spec() -> impl Strategy<Value = SyntheticSpec> {
    (25usize..60, 2usize..4, 25usize..60, 6u64..20, 0u64..500).prop_map(
        |(sequences, clusters, avg_len, alphabet, seed)| SyntheticSpec {
            sequences,
            clusters,
            avg_len,
            alphabet: alphabet as usize,
            outlier_fraction: 0.0,
            seed,
        },
    )
}

/// Parameter mixes that exercise every serialized enum tag and option —
/// including the incremental engine, whose runs write the v3 cache
/// section and (past the first boundary) delta-framed cluster lists.
fn arb_params() -> impl Strategy<Value = CluseqParams> {
    (
        0u64..100,
        0u8..3,
        proptest::bool::ANY,
        proptest::bool::ANY,
        1usize..5,
        proptest::bool::ANY,
    )
        .prop_map(|(seed, order, snapshot, adjust, every, incremental)| {
            let mut p = CluseqParams::default()
                .with_initial_clusters(2)
                .with_significance(4)
                .with_max_depth(4)
                .with_max_iterations(4)
                .with_seed(seed)
                .with_order(match order {
                    0 => ExaminationOrder::Fixed,
                    1 => ExaminationOrder::Random,
                    _ => ExaminationOrder::ClusterBased,
                })
                .with_scan_mode(if snapshot {
                    ScanMode::Snapshot
                } else {
                    ScanMode::Incremental
                })
                .with_threshold_adjustment(adjust)
                .with_incremental(incremental);
            // The directory itself is injected per-case (it must be unique
            // on disk), but the cadence comes from the strategy.
            p = p.with_checkpoints("placeholder", every);
            p
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Checkpoint round-trip: every retained boundary file from a real run
    /// re-encodes byte-identically after a decode.
    #[test]
    fn checkpoint_save_load_save_is_byte_identical(
        spec in arb_spec(),
        params in arb_params(),
    ) {
        let tag = format!("ckpt-{}-{}", spec.seed, params.seed);
        let dir = scratch(&tag);
        let every = params.checkpoint.as_ref().unwrap().every;
        let params = params.with_checkpoints(&dir, every);

        let db = spec.generate();
        Cluseq::new(params).run(&db);

        let mut any = false;
        for entry in fs::read_dir(&dir).expect("scan") {
            let path = entry.expect("entry").path();
            if path.extension().map_or(true, |e| e != "ckpt") {
                continue;
            }
            any = true;
            let original = fs::read(&path).expect("read");
            match Checkpoint::load(&mut original.as_slice()) {
                Ok(loaded) => {
                    let mut reencoded = Vec::new();
                    loaded.save(&mut reencoded).expect("Vec write cannot fail");
                    prop_assert_eq!(
                        &original,
                        &reencoded,
                        "{}: re-encode differs from disk bytes",
                        path.display()
                    );
                }
                Err(e) => {
                    // Incremental runs write delta files past the first
                    // boundary; the bare reader refuses those by name and
                    // `load_path` resolves the chain. The re-encode of
                    // the *resolved* state is self-contained, so the
                    // byte-identity property becomes: resolve, save,
                    // load, save — the two self-contained encodes must
                    // match. (Delta framing itself is pinned byte-exact
                    // by the checkpoint unit tests.)
                    prop_assert!(
                        e.to_string().contains("delta"),
                        "{}: a fresh checkpoint failed to load for a \
                         non-delta reason: {e}",
                        path.display()
                    );
                    let resolved = Checkpoint::load_path(&path)
                        .expect("a delta must resolve through its base chain");
                    let mut first = Vec::new();
                    resolved.save(&mut first).expect("Vec write cannot fail");
                    let reloaded = Checkpoint::load(&mut first.as_slice())
                        .expect("the resolved re-encode is self-contained");
                    let mut second = Vec::new();
                    reloaded.save(&mut second).expect("Vec write cannot fail");
                    prop_assert_eq!(
                        &first,
                        &second,
                        "{}: resolved re-encode differs",
                        path.display()
                    );
                }
            }
        }
        prop_assert!(any, "the run must have written at least one checkpoint");
    }

    /// SavedModel round-trip: the classifier snapshot of any outcome
    /// re-encodes byte-identically.
    #[test]
    fn model_save_load_save_is_byte_identical(
        spec in arb_spec(),
        seed in 0u64..100,
    ) {
        let db = spec.generate();
        let outcome = Cluseq::new(
            CluseqParams::default()
                .with_initial_clusters(2)
                .with_significance(4)
                .with_max_depth(4)
                .with_max_iterations(4)
                .with_seed(seed),
        )
        .run(&db);

        let model = SavedModel::from_outcome(&outcome);
        let mut first = Vec::new();
        model.save(&mut first).expect("Vec write cannot fail");
        let loaded = SavedModel::load(&mut first.as_slice()).expect("loads");
        let mut second = Vec::new();
        loaded.save(&mut second).expect("Vec write cannot fail");
        prop_assert_eq!(first, second, "model re-encode differs");
    }
}
