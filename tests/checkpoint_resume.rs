//! Crash-recovery suite: killing a run at *every* checkpoint boundary and
//! resuming must reproduce the uninterrupted run bit for bit.
//!
//! The contract (see DESIGN.md, "Checkpoints & crash recovery"): a
//! checkpoint captures the complete loop state — cluster models with
//! member lists, RNG stream position, threshold trajectory, iteration
//! records — so `Cluseq::resume` continues exactly where the original
//! process stopped. The golden run writes a checkpoint after every
//! iteration; each retained file then stands in for "the process was
//! killed right after this boundary", and the resumed outcome plus its
//! telemetry `counters_json()` must equal the golden run's byte for byte.
//! The matrix covers both scan modes at 1 and 4 threads, since resumption
//! must also be independent of parallelism.

use std::fs;
use std::path::{Path, PathBuf};

use cluseq::prelude::*;

/// A scratch directory under the cargo target tree, wiped per test.
fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn workload() -> SequenceDatabase {
    SyntheticSpec {
        sequences: 120,
        clusters: 3,
        avg_len: 90,
        alphabet: 30,
        outlier_fraction: 0.05,
        seed: 77,
    }
    .generate()
}

const MAX_ITERS: usize = 10;

fn params(mode: ScanMode, threads: usize, dir: &Path, every: usize) -> CluseqParams {
    CluseqParams::default()
        .with_initial_clusters(3)
        .with_significance(6)
        .with_max_depth(5)
        .with_max_iterations(MAX_ITERS)
        .with_seed(5)
        .with_scan_mode(mode)
        .with_threads(threads)
        .with_checkpoints(dir, every)
}

/// Full structural identity of two outcomes, thresholds compared as raw
/// bits so a one-ulp drift fails.
fn assert_same_outcome(golden: &CluseqOutcome, resumed: &CluseqOutcome, what: &str) {
    assert_eq!(golden.iterations, resumed.iterations, "{what}: iterations");
    assert_eq!(
        golden.final_log_t.to_bits(),
        resumed.final_log_t.to_bits(),
        "{what}: final threshold"
    );
    assert_eq!(golden.history, resumed.history, "{what}: history");
    assert_eq!(
        golden.best_cluster, resumed.best_cluster,
        "{what}: best_cluster"
    );
    assert_eq!(golden.outliers, resumed.outliers, "{what}: outliers");
    assert_eq!(
        golden.cluster_count(),
        resumed.cluster_count(),
        "{what}: cluster count"
    );
    for (g, r) in golden.clusters.iter().zip(&resumed.clusters) {
        assert_eq!(g.id, r.id, "{what}: cluster id");
        assert_eq!(g.seed, r.seed, "{what}: cluster seed");
        assert_eq!(g.members, r.members, "{what}: cluster members");
    }
}

/// Reads every retained checkpoint, oldest first, *before* any resume can
/// overwrite them (resumed runs keep checkpointing into the same
/// directory, and record timings make rewritten files differ in their
/// wall-clock bytes).
fn snapshot_checkpoints(dir: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read checkpoint dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let bytes = fs::read(&p).expect("read checkpoint");
            (p, bytes)
        })
        .collect()
}

/// The tentpole proof: a golden run checkpointing every iteration, then
/// one resume per retained boundary, each compared bit-for-bit.
fn kill_at_every_boundary(mode: ScanMode, threads: usize, name: &str) {
    let dir = tmpdir(name);
    let db = workload();

    let mut golden_report = RunReport::new();
    let golden = Cluseq::new(params(mode, threads, &dir, 1)).run_observed(&db, &mut golden_report);
    let golden_counters = golden_report.counters_json();

    let files = snapshot_checkpoints(&dir);
    assert_eq!(
        files.len(),
        golden.iterations,
        "every=1 must retain one checkpoint per iteration"
    );
    assert!(
        files.len() >= 2,
        "workload must take several iterations or the sweep is vacuous"
    );

    for (path, bytes) in &files {
        let what = path.display().to_string();
        let ckpt = Checkpoint::load(&mut bytes.as_slice())
            .unwrap_or_else(|e| panic!("{what}: load failed: {e}"));
        ckpt.verify_database(&db)
            .unwrap_or_else(|e| panic!("{what}: guard rejected the original database: {e}"));

        let mut report = RunReport::new();
        let resumed = Cluseq::resume_observed(ckpt, &db, &mut report);
        assert_same_outcome(&golden, &resumed, &what);
        assert_eq!(
            golden_counters,
            report.counters_json(),
            "{what}: resumed telemetry counters must be byte-identical"
        );
    }

    // The last checkpoint is the end state itself — the fixpoint, or the
    // iteration cap — so resuming from it runs no further iterations.
    let (_, last) = files.last().expect("at least one checkpoint");
    let ckpt = Checkpoint::load(&mut last.as_slice()).expect("final checkpoint loads");
    assert!(
        ckpt.stable || ckpt.completed == MAX_ITERS,
        "final checkpoint captures either the fixpoint or the cap"
    );
    assert_eq!(ckpt.completed, golden.iterations);
}

#[test]
fn kill_at_every_boundary_incremental_t1() {
    kill_at_every_boundary(ScanMode::Incremental, 1, "kill-incremental-t1");
}

#[test]
fn kill_at_every_boundary_incremental_t4() {
    kill_at_every_boundary(ScanMode::Incremental, 4, "kill-incremental-t4");
}

#[test]
fn kill_at_every_boundary_snapshot_t1() {
    kill_at_every_boundary(ScanMode::Snapshot, 1, "kill-snapshot-t1");
}

#[test]
fn kill_at_every_boundary_snapshot_t4() {
    kill_at_every_boundary(ScanMode::Snapshot, 4, "kill-snapshot-t4");
}

/// Checkpointing must be a pure observer of the run: turning it on (which
/// forces iteration-record assembly even without a telemetry observer)
/// cannot change the clustering result.
#[test]
fn checkpointing_does_not_perturb_the_run() {
    let dir = tmpdir("no-perturb");
    let db = workload();
    let with = Cluseq::new(params(ScanMode::Incremental, 1, &dir, 1)).run(&db);
    let without =
        Cluseq::new(params(ScanMode::Incremental, 1, &dir, 1).without_checkpoints()).run(&db);
    assert_same_outcome(&without, &with, "checkpointing on vs off");
}

/// `Cluseq::resume` (no observer) must give the same outcome as the
/// observed variant: record availability in checkpoints is independent of
/// whoever watched the original run.
#[test]
fn resume_without_an_observer_matches() {
    let dir = tmpdir("resume-noop");
    let db = workload();
    let golden = Cluseq::new(params(ScanMode::Snapshot, 2, &dir, 1)).run(&db);

    let (_, bytes) = snapshot_checkpoints(&dir)
        .into_iter()
        .next()
        .expect("first checkpoint");
    let ckpt = Checkpoint::load(&mut bytes.as_slice()).expect("loads");
    let resumed = Cluseq::resume(ckpt, &db);
    assert_same_outcome(&golden, &resumed, "noop-observer resume");
}

/// A sparser cadence writes only boundary files — plus the fixpoint, which
/// is always captured so `--resume` never repeats completed work.
#[test]
fn cadence_writes_boundaries_plus_the_fixpoint() {
    let dir = tmpdir("cadence");
    let db = workload();
    let outcome = Cluseq::new(params(ScanMode::Incremental, 1, &dir, 4)).run(&db);

    let completed: Vec<usize> = snapshot_checkpoints(&dir)
        .iter()
        .map(|(p, _)| {
            let stem = p.file_stem().unwrap().to_str().unwrap();
            stem.strip_prefix("cluseq-").unwrap().parse().unwrap()
        })
        .collect();
    assert!(!completed.is_empty(), "at least the fixpoint is written");
    for &c in &completed {
        assert!(
            c % 4 == 0 || c == outcome.iterations,
            "unexpected checkpoint at iteration {c}"
        );
    }
    assert_eq!(
        *completed.last().unwrap(),
        outcome.iterations,
        "the fixpoint checkpoint is always present"
    );
}

/// A resumed run keeps checkpointing under the stored policy: wipe
/// everything after the first boundary, resume, and the later files come
/// back.
#[test]
fn resume_continues_writing_checkpoints() {
    let dir = tmpdir("resume-continues");
    let db = workload();
    let golden = Cluseq::new(params(ScanMode::Incremental, 1, &dir, 1)).run(&db);

    let files = snapshot_checkpoints(&dir);
    assert!(files.len() >= 2);
    let (first_path, first_bytes) = &files[0];
    for (path, _) in &files[1..] {
        fs::remove_file(path).expect("drop later checkpoint");
    }
    assert_eq!(
        Checkpoint::latest_in(&dir).expect("scan").as_deref(),
        Some(first_path.as_path())
    );

    let ckpt = Checkpoint::load(&mut first_bytes.as_slice()).expect("loads");
    let resumed = Cluseq::resume(ckpt, &db);
    assert_same_outcome(&golden, &resumed, "resume after wipe");

    let after = snapshot_checkpoints(&dir);
    assert_eq!(
        after.len(),
        files.len(),
        "the resumed run must rewrite every later boundary"
    );
    let final_ckpt = Checkpoint::load(&mut after.last().unwrap().1.as_slice())
        .expect("rewritten fixpoint checkpoint loads");
    assert!(final_ckpt.stable);
    assert_eq!(final_ckpt.completed, golden.iterations);
}

/// The database guard: a checkpoint must name what differs when handed the
/// wrong database, and `resume` must refuse to run on it.
#[test]
fn resuming_against_a_different_database_is_rejected() {
    let dir = tmpdir("wrong-db");
    let db = workload();
    Cluseq::new(params(ScanMode::Incremental, 1, &dir, 1)).run(&db);

    let (_, bytes) = snapshot_checkpoints(&dir)
        .into_iter()
        .next()
        .expect("first checkpoint");
    let ckpt = Checkpoint::load(&mut bytes.as_slice()).expect("loads");

    let other = SyntheticSpec {
        sequences: 120,
        clusters: 3,
        avg_len: 90,
        alphabet: 30,
        outlier_fraction: 0.05,
        seed: 78, // different content, same shape
    }
    .generate();
    let err = ckpt
        .verify_database(&other)
        .expect_err("content mismatch must be caught");
    assert!(err.contains("content"), "unhelpful guard message: {err}");

    let smaller = SyntheticSpec {
        sequences: 60,
        clusters: 3,
        avg_len: 90,
        alphabet: 30,
        outlier_fraction: 0.05,
        seed: 77,
    }
    .generate();
    let err = ckpt
        .verify_database(&smaller)
        .expect_err("size mismatch must be caught");
    assert!(
        err.contains("sequence count"),
        "unhelpful guard message: {err}"
    );
}

#[test]
#[should_panic(expected = "cannot resume")]
fn resume_panics_on_a_mismatched_database() {
    let dir = tmpdir("wrong-db-panic");
    let db = workload();
    Cluseq::new(params(ScanMode::Incremental, 1, &dir, 1)).run(&db);
    let (_, bytes) = snapshot_checkpoints(&dir)
        .into_iter()
        .next()
        .expect("first checkpoint");
    let ckpt = Checkpoint::load(&mut bytes.as_slice()).expect("loads");
    let other = SequenceDatabase::from_strs(["abc", "cba"]);
    Cluseq::resume(ckpt, &other);
}
