//! Out-of-core identity suite: the storage backend is a *capacity* knob,
//! never a *results* knob.
//!
//! The contract (see ARCHITECTURE.md, "Out-of-core operation"): a
//! clustering run reads its corpus through the [`SequenceStore`] trait,
//! and every backend — the in-memory [`SequenceDatabase`] or the
//! file-backed [`FileStore`] streaming CSEQ v2 through a bounded window —
//! must produce byte-for-byte identical outcomes, across every scan
//! kernel, thread count, and scan-shard size. The saved model
//! ([`SavedModel`]) must also serialize to identical bytes, because a
//! model trained out-of-core is promised to be interchangeable with one
//! trained in memory. Finally, a checkpoint taken under one backend must
//! resume under the other without a single bit of drift — the checkpoint
//! digests sequence *content*, not the storage mode.

use std::fs;
use std::path::PathBuf;

use cluseq::prelude::*;
use cluseq::seq::store::{write_indexed, FileStore};
use cluseq::seq::{SequenceStore, StoreKind};
use cluseq_test_utils::{clustered_db, observe};

/// A scratch directory under the cargo target tree, wiped per test.
fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn workload() -> SequenceDatabase {
    clustered_db(160, 4, 90, 50, 0.05, 91)
}

fn params(kernel: ScanKernel, threads: usize, shard: Option<usize>) -> CluseqParams {
    let mut p = CluseqParams::default()
        .with_initial_clusters(4)
        .with_significance(7)
        .with_max_depth(5)
        .with_max_iterations(8)
        .with_seed(13)
        .with_scan_mode(ScanMode::Snapshot)
        .with_scan_kernel(kernel)
        .with_threads(threads);
    if let Some(s) = shard {
        p = p.with_scan_shard(s);
    }
    p
}

/// The saved model's exact serialization.
fn model_bytes(outcome: &CluseqOutcome) -> Vec<u8> {
    let mut bytes = Vec::new();
    SavedModel::from_outcome(outcome)
        .save(&mut bytes)
        .expect("serialize model");
    bytes
}

#[test]
fn store_kernel_threads_and_shard_grid_is_byte_identical() {
    let dir = tmpdir("ooc_grid");
    let db = workload();
    let path = dir.join("corpus.cseq");
    write_indexed(&db, &path).expect("write corpus");
    let fs = FileStore::open(&path).expect("open corpus");

    let reference_outcome = Cluseq::new(params(ScanKernel::Compiled, 1, None)).run(&db);
    let reference = observe(&reference_outcome);
    let reference_model = model_bytes(&reference_outcome);
    assert!(
        !reference.memberships.is_empty(),
        "the reference run found no clusters — the identity check would be vacuous"
    );

    // A diagonal through the store × kernel × threads × shard space:
    // every *exact* kernel appears (Quantized is approximate by contract —
    // see kernel_equivalence.rs — so it has no byte-identity claim), both
    // thread counts, sharded and unsharded, and a cache budget small
    // enough to force evictions on two cells.
    let cells: [(ScanKernel, usize, Option<usize>, Option<usize>); 5] = [
        (ScanKernel::Compiled, 4, None, None),
        (ScanKernel::Compiled, 4, Some(32), Some(1)),
        (ScanKernel::Interpreted, 1, Some(32), None),
        (ScanKernel::Batched, 4, Some(17), None),
        (ScanKernel::Batched, 1, None, Some(1)),
    ];
    for backend in ["memory", "file"] {
        let store: &dyn SequenceStore = match backend {
            "memory" => &db,
            _ => &fs,
        };
        for (kernel, threads, shard, cache_mb) in cells {
            let mut p = params(kernel, threads, shard);
            if let Some(mb) = cache_mb {
                p = p.with_model_cache_mb(mb);
            }
            let outcome = Cluseq::new(p).run(store);
            let what = format!("{backend}/{kernel:?}/t{threads}/shard{shard:?}");
            assert_eq!(
                observe(&outcome),
                reference,
                "{what} diverged from the in-memory serial reference"
            );
            assert_eq!(
                model_bytes(&outcome),
                reference_model,
                "{what}: saved model bytes differ"
            );
        }
    }
}

#[test]
fn tiny_read_window_changes_nothing_but_io() {
    // A 4 KiB window forces the reader to re-fetch constantly; the run
    // must still be bit-identical to the fully resident one.
    let dir = tmpdir("ooc_window");
    let db = workload();
    let path = dir.join("corpus.cseq");
    write_indexed(&db, &path).expect("write corpus");
    let tiny = FileStore::open_windowed(&path, 4096).expect("open windowed");

    let reference = observe(&Cluseq::new(params(ScanKernel::Compiled, 4, Some(32))).run(&db));
    let got = observe(&Cluseq::new(params(ScanKernel::Compiled, 4, Some(32))).run(&tiny));
    assert_eq!(got, reference, "4 KiB window diverged from in-memory run");
}

#[test]
fn checkpoint_crosses_store_backends_without_drift() {
    // Golden: uninterrupted in-memory run. Then checkpoint the same run
    // and resume it through the file backend — the digest covers content,
    // not storage, so the switch must be invisible in the output.
    let dir = tmpdir("ooc_resume");
    let db = workload();
    let path = dir.join("corpus.cseq");
    write_indexed(&db, &path).expect("write corpus");
    let fs = FileStore::open(&path).expect("open corpus");

    let golden = observe(&Cluseq::new(params(ScanKernel::Compiled, 1, None)).run(&db));

    let ckpt_dir = dir.join("ckpt");
    let p = params(ScanKernel::Compiled, 1, None).with_checkpoints(&ckpt_dir, 1);
    let _ = Cluseq::new(p).run(&db);
    let mut files: Vec<PathBuf> = fs::read_dir(&ckpt_dir)
        .expect("checkpoint dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
        .collect();
    files.sort();
    assert!(files.len() >= 2, "need a mid-run checkpoint to resume from");
    let mid = &files[files.len() / 2];
    let ckpt = Checkpoint::load_path(mid).expect("checkpoint loads");
    assert_eq!(
        ckpt.store,
        StoreKind::Memory,
        "checkpoint records the backend it was taken under"
    );
    ckpt.verify_database(&fs)
        .expect("content digest matches across backends");

    let resumed = observe(&Cluseq::resume(ckpt, &fs));
    assert_eq!(
        resumed, golden,
        "resuming a memory-store checkpoint on the file store diverged"
    );
}
