//! Cross-crate property tests: invariants of the full pipeline on random
//! workloads.

use proptest::prelude::*;

use cluseq::prelude::*;

fn arb_spec() -> impl Strategy<Value = SyntheticSpec> {
    (
        40usize..120,
        2usize..5,
        30usize..80,
        10usize..40,
        0u64..1000,
    )
        .prop_map(
            |(sequences, clusters, avg_len, alphabet, seed)| SyntheticSpec {
                sequences,
                clusters,
                avg_len,
                alphabet,
                outlier_fraction: 0.0,
                seed,
            },
        )
}

fn params(seed: u64) -> CluseqParams {
    CluseqParams::default()
        .with_initial_clusters(2)
        .with_significance(5)
        .with_max_depth(5)
        .with_max_iterations(12)
        .with_seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Structural invariants of any outcome: memberships are sorted,
    /// in-range, consistent with best_cluster and outliers; history is
    /// coherent.
    #[test]
    fn outcome_structure_is_consistent(spec in arb_spec(), seed in 0u64..100) {
        let db = spec.generate();
        let outcome = Cluseq::new(params(seed)).run(&db);

        let lists = outcome.membership_lists();
        prop_assert_eq!(lists.len(), outcome.cluster_count());
        let mut member_of_any = vec![false; db.len()];
        for members in &lists {
            // Sorted, deduplicated, in range.
            for w in members.windows(2) {
                prop_assert!(w[0] < w[1], "members sorted/unique");
            }
            for &m in members {
                prop_assert!(m < db.len());
                member_of_any[m] = true;
            }
        }
        #[allow(clippy::needless_range_loop)] // i indexes three parallel structures
        for i in 0..db.len() {
            prop_assert_eq!(outcome.best_cluster[i].is_some(), member_of_any[i]);
            prop_assert_eq!(outcome.outliers.contains(&i), !member_of_any[i]);
            if let Some(b) = outcome.best_cluster[i] {
                prop_assert!(lists[b].contains(&i), "best cluster contains the sequence");
            }
        }
        prop_assert_eq!(outcome.history.len(), outcome.iterations);
        prop_assert!(outcome.iterations >= 1);
        prop_assert!(outcome.final_log_t >= 0.0, "t >= 1 always");
    }

    /// Determinism: identical inputs and seeds give identical outcomes.
    #[test]
    fn pipeline_is_deterministic(spec in arb_spec()) {
        let db = spec.generate();
        let a = Cluseq::new(params(1)).run(&db);
        let b = Cluseq::new(params(1)).run(&db);
        prop_assert_eq!(a.cluster_count(), b.cluster_count());
        prop_assert_eq!(a.best_cluster, b.best_cluster);
        prop_assert_eq!(a.final_log_t, b.final_log_t);
        prop_assert_eq!(a.iterations, b.iterations);
    }

    /// Every cluster a sequence belongs to really scores above the final
    /// threshold with the final models (the final assignment pass
    /// guarantees it — this pins the contract).
    #[test]
    fn memberships_respect_the_threshold(spec in arb_spec()) {
        let db = spec.generate();
        let outcome = Cluseq::new(params(3)).run(&db);
        for (k, cluster) in outcome.clusters.iter().enumerate() {
            for &m in cluster.members.iter().take(10) {
                let ranked = outcome.classify(db.sequence(m).symbols());
                let score = ranked.iter().find(|&&(kk, _)| kk == k).map(|&(_, s)| s.log_sim);
                prop_assert!(score.is_some());
                prop_assert!(
                    score.unwrap() >= outcome.final_log_t - 1e-9,
                    "member {m} of cluster {k} scores {:?} < t {}",
                    score, outcome.final_log_t
                );
            }
        }
    }

    /// The evaluation pipeline accepts any outcome without panicking and
    /// produces in-range numbers.
    #[test]
    fn evaluation_is_total(spec in arb_spec(), seed in 0u64..50) {
        let db = spec.generate();
        let outcome = Cluseq::new(params(seed)).run(&db);
        let c = Confusion::new(
            &db.labels(),
            &outcome.membership_lists(),
            MatchStrategy::Hungarian,
        );
        prop_assert!((0.0..=1.0).contains(&c.accuracy()));
        prop_assert!((0.0..=1.0).contains(&c.macro_precision()));
        prop_assert!((0.0..=1.0).contains(&c.macro_recall()));
        for m in c.class_metrics() {
            prop_assert!((0.0..=1.0).contains(&m.precision));
            prop_assert!((0.0..=1.0).contains(&m.recall));
            prop_assert!((0.0..=1.0).contains(&m.f1()));
        }
    }
}
