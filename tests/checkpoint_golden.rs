//! Forward-compatibility anchors for the checkpoint format: committed
//! checkpoint files — one per on-disk version — that every future reader
//! must keep loading and resuming correctly.
//!
//! Each fixture (`tests/golden/checkpoint_v{1,2,3}.ckpt`) was produced by
//! the `#[ignore]`d `regenerate_the_fixture` test at the time its format
//! was current: the first checkpoint of a fixed seeded run, with the
//! scratch directory in its stored policy scrubbed to a relative path
//! before committing. Because the whole pipeline is deterministic,
//! resuming a fixture against the same regenerated workload must still
//! land on the same final clustering as a fresh uninterrupted run — so
//! these tests fail if a format change breaks old files *or* silently
//! changes their meaning. A breaking change must bump
//! `Checkpoint::VERSION`, keep the old decode paths, and add a new
//! fixture alongside the existing ones.

use std::fs;
use std::path::PathBuf;

use cluseq::prelude::*;

fn fixture_path(name: &str) -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/cluseq; the fixtures live with the
    // repo-level tests.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

/// The exact workload the fixture was generated from.
fn workload() -> SequenceDatabase {
    SyntheticSpec {
        sequences: 60,
        clusters: 2,
        avg_len: 50,
        alphabet: 12,
        outlier_fraction: 0.0,
        seed: 2003,
    }
    .generate()
}

/// The exact parameters the fixture was generated with (minus the scratch
/// checkpoint directory, which is scrubbed to `ckpts` in the fixture).
fn generation_params() -> CluseqParams {
    CluseqParams::default()
        .with_initial_clusters(2)
        .with_significance(5)
        .with_max_depth(5)
        .with_max_iterations(8)
        .with_seed(17)
}

/// Loads a committed fixture, checks its structural shape, and proves
/// resuming it matches a fresh run of `params` bit for bit.
fn assert_fixture_resumes_identically(name: &str, params: CluseqParams) -> Checkpoint {
    let bytes = fs::read(fixture_path(name)).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}; regenerate with \
             `cargo test -p cluseq --test checkpoint_golden -- --ignored`",
            fixture_path(name).display()
        )
    });
    let ckpt =
        Checkpoint::load(&mut bytes.as_slice()).expect("a committed checkpoint must keep loading");

    // Structural sanity: the fixture is a mid-run boundary, not an
    // end-state, so a resume exercises real iterations.
    assert!(ckpt.completed >= 1, "fixture captures a completed boundary");
    assert!(!ckpt.stable, "fixture must not already be at the fixpoint");
    assert!(!ckpt.clusters.is_empty());
    assert_eq!(ckpt.records.len(), ckpt.completed);

    let db = workload();
    ckpt.verify_database(&db)
        .expect("the guard must keep accepting the generating workload");

    // Meaning-preservation: resuming the old file must land on the same
    // clustering as running from scratch today, including the telemetry
    // counters. The stored policy is dropped before resuming so the test
    // leaves no checkpoint files in the workspace (checkpointing on/off
    // equivalence is proven separately in checkpoint_resume.rs).
    let mut resumable = ckpt.clone();
    resumable.params = resumable.params.without_checkpoints();

    let mut fresh_report = RunReport::new();
    let fresh = Cluseq::new(params).run_observed(&db, &mut fresh_report);

    let mut resumed_report = RunReport::new();
    let resumed = Cluseq::resume_observed(resumable, &db, &mut resumed_report);

    assert_eq!(fresh.iterations, resumed.iterations);
    assert_eq!(fresh.final_log_t.to_bits(), resumed.final_log_t.to_bits());
    assert_eq!(fresh.best_cluster, resumed.best_cluster);
    assert_eq!(fresh.outliers, resumed.outliers);
    assert_eq!(fresh.history, resumed.history);
    assert_eq!(
        fresh_report.counters_json(),
        resumed_report.counters_json(),
        "telemetry counters must survive the format boundary"
    );
    ckpt
}

#[test]
fn the_v1_fixture_still_loads_and_resumes_identically() {
    let ckpt = assert_fixture_resumes_identically("checkpoint_v1.ckpt", generation_params());
    assert_eq!(ckpt.completed, 1, "fixture captures the first boundary");
    // v1 files predate the scan-kernel field; the loader must default it
    // to the compiled kernel (safe: the kernels are bit-identical).
    assert_eq!(ckpt.params.scan_kernel, ScanKernel::Compiled);
}

#[test]
fn the_v2_fixture_loads_and_resumes_identically() {
    let ckpt = assert_fixture_resumes_identically(
        "checkpoint_v2.ckpt",
        generation_params().with_scan_kernel(ScanKernel::Interpreted),
    );
    assert_eq!(ckpt.completed, 1, "fixture captures the first boundary");
    // v2 stores the kernel choice; the fixture was generated with the
    // non-default interpreted kernel precisely so a lossy decode (falling
    // back to the default) would be caught here.
    assert_eq!(ckpt.params.scan_kernel, ScanKernel::Interpreted);
    // v2 predates the incremental engine; the decode defaults are an
    // engine that is off with a cold cache — the true v2-era state.
    assert!(!ckpt.params.incremental);
    assert!(ckpt.cache.is_empty());
}

#[test]
fn the_v3_fixture_loads_and_resumes_identically() {
    let ckpt = assert_fixture_resumes_identically(
        "checkpoint_v3.ckpt",
        generation_params().with_incremental(true),
    );
    // v3 stores the incremental flag and the similarity cache; the
    // fixture was generated with the non-default engine on precisely so
    // a lossy decode (dropping the cache, falling back to off) would be
    // caught here — a resumed run with a cold cache would report
    // different pairs_scored/pairs_reused counters than the fresh run.
    assert!(ckpt.params.incremental);
    assert!(
        !ckpt.cache.is_empty(),
        "a boundary of an incremental run must carry cache columns"
    );
}

/// Regenerates the *current-format* fixture (today: v3). Run explicitly
/// after an *intentional* format revision (with a version bump and
/// back-compat decode paths for every older fixture):
///
/// ```sh
/// cargo test -p cluseq --test checkpoint_golden -- --ignored
/// ```
#[test]
#[ignore = "writes the committed fixture; run by hand after a format revision"]
fn regenerate_the_fixture() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("golden-regen");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");

    let db = workload();
    Cluseq::new(
        generation_params()
            .with_incremental(true)
            .with_checkpoints(&dir, 1),
    )
    .run(&db);

    // The fixture must exercise everything v3 added, so pick the *last*
    // mid-run boundary whose similarity cache is warm (the first boundary
    // always has a cold cache: freshly seeded clusters mutate during
    // their first scan, which evicts their columns). Boundaries past the
    // first are delta files; `load_path` resolves the chain, and the
    // fixture is re-saved self-contained so the bare reader keeps
    // accepting it.
    let mut best: Option<Checkpoint> = None;
    for entry in fs::read_dir(&dir).expect("scratch dir readable") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "ckpt") {
            continue;
        }
        let ckpt = Checkpoint::load_path(&path).expect("every boundary loads");
        if ckpt.stable || ckpt.cache.is_empty() {
            continue;
        }
        if best.as_ref().is_none_or(|b| ckpt.completed > b.completed) {
            best = Some(ckpt);
        }
    }
    let mut ckpt = best.expect("some mid-run boundary must have a warm cache");

    // Scrub the machine-local scratch path before committing; the cadence
    // is preserved.
    ckpt.params = ckpt.params.with_checkpoints("ckpts", 1);

    let mut out = Vec::new();
    ckpt.save(&mut out).expect("Vec write cannot fail");
    let path = fixture_path("checkpoint_v3.ckpt");
    fs::write(&path, out).expect("write fixture");
    eprintln!(
        "fixture rewritten at {} (boundary {}, {} cache columns)",
        path.display(),
        ckpt.completed,
        ckpt.cache.len()
    );
}
