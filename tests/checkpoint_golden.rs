//! Forward-compatibility anchor for the checkpoint format: a committed
//! version-1 checkpoint file that every future reader must keep loading
//! and resuming correctly.
//!
//! The fixture (`tests/golden/checkpoint_v1.ckpt`) was produced by the
//! `#[ignore]`d `regenerate_the_fixture` test: the first checkpoint of a
//! fixed seeded run, with the scratch directory in its stored policy
//! scrubbed to a relative path before committing. Because the whole
//! pipeline is deterministic, resuming the fixture against the same
//! regenerated workload must still land on the same final clustering as a
//! fresh uninterrupted run — so this test fails if a format change breaks
//! old files *or* silently changes their meaning. A breaking change must
//! bump `Checkpoint::VERSION`, keep a version-1 decode path, and add a new
//! fixture alongside this one.

use std::fs;
use std::path::PathBuf;

use cluseq::prelude::*;

fn fixture_path() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/cluseq; the fixture lives with the
    // repo-level tests.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/checkpoint_v1.ckpt")
}

/// The exact workload the fixture was generated from.
fn workload() -> SequenceDatabase {
    SyntheticSpec {
        sequences: 60,
        clusters: 2,
        avg_len: 50,
        alphabet: 12,
        outlier_fraction: 0.0,
        seed: 2003,
    }
    .generate()
}

/// The exact parameters the fixture was generated with (minus the scratch
/// checkpoint directory, which is scrubbed to `ckpts` in the fixture).
fn generation_params() -> CluseqParams {
    CluseqParams::default()
        .with_initial_clusters(2)
        .with_significance(5)
        .with_max_depth(5)
        .with_max_iterations(8)
        .with_seed(17)
}

#[test]
fn the_v1_fixture_still_loads_and_resumes_identically() {
    let bytes = fs::read(fixture_path()).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}; regenerate with \
             `cargo test -p cluseq --test checkpoint_golden -- --ignored`",
            fixture_path().display()
        )
    });
    let ckpt = Checkpoint::load(&mut bytes.as_slice())
        .expect("a committed v1 checkpoint must keep loading");

    // Structural sanity: the fixture is a mid-run boundary, not an
    // end-state, so a resume exercises real iterations.
    assert_eq!(ckpt.completed, 1, "fixture captures the first boundary");
    assert!(!ckpt.stable, "fixture must not already be at the fixpoint");
    assert!(!ckpt.clusters.is_empty());
    assert_eq!(ckpt.records.len(), ckpt.completed);

    let db = workload();
    ckpt.verify_database(&db)
        .expect("the guard must keep accepting the generating workload");

    // Meaning-preservation: resuming the old file must land on the same
    // clustering as running from scratch today, including the telemetry
    // counters. The stored policy is dropped before resuming so the test
    // leaves no checkpoint files in the workspace (checkpointing on/off
    // equivalence is proven separately in checkpoint_resume.rs).
    let mut ckpt = ckpt;
    ckpt.params = ckpt.params.without_checkpoints();

    let mut fresh_report = RunReport::new();
    let fresh = Cluseq::new(generation_params()).run_observed(&db, &mut fresh_report);

    let mut resumed_report = RunReport::new();
    let resumed = Cluseq::resume_observed(ckpt, &db, &mut resumed_report);

    assert_eq!(fresh.iterations, resumed.iterations);
    assert_eq!(fresh.final_log_t.to_bits(), resumed.final_log_t.to_bits());
    assert_eq!(fresh.best_cluster, resumed.best_cluster);
    assert_eq!(fresh.outliers, resumed.outliers);
    assert_eq!(fresh.history, resumed.history);
    assert_eq!(
        fresh_report.counters_json(),
        resumed_report.counters_json(),
        "telemetry counters must survive the format boundary"
    );
}

/// Regenerates the fixture. Run explicitly after an *intentional* format
/// revision (with a version bump and a back-compat decode path):
///
/// ```sh
/// cargo test -p cluseq --test checkpoint_golden -- --ignored
/// ```
#[test]
#[ignore = "writes the committed fixture; run by hand after a format revision"]
fn regenerate_the_fixture() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("golden-regen");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");

    let db = workload();
    Cluseq::new(generation_params().with_checkpoints(&dir, 1)).run(&db);

    let first = dir.join("cluseq-000001.ckpt");
    let bytes = fs::read(&first).expect("first boundary checkpoint exists");
    let mut ckpt = Checkpoint::load(&mut bytes.as_slice()).expect("loads");

    // Scrub the machine-local scratch path before committing; the cadence
    // is preserved.
    ckpt.params = ckpt.params.with_checkpoints("ckpts", 1);

    let mut out = Vec::new();
    ckpt.save(&mut out).expect("Vec write cannot fail");
    fs::write(fixture_path(), out).expect("write fixture");
    eprintln!("fixture rewritten at {}", fixture_path().display());
}
