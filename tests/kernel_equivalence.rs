//! Property tests for the compiled scan kernel: on random PSTs — before
//! and after pruning — the flat-automaton kernel must reproduce the
//! interpreted suffix-tree walk **byte for byte** (`f64::to_bits`, not an
//! epsilon), and the threshold early-exit may only skip pairs that are
//! provably below the threshold.

use proptest::prelude::*;

use cluseq::core::{
    max_similarity_compiled, max_similarity_compiled_bounded, max_similarity_pst, BoundedSimilarity,
};
use cluseq::prelude::*;

/// A random PST workload: alphabet size, training material, probe
/// sequence, and model parameters (smoothing on or off, and an optional
/// prune-to byte budget as a fraction of the unpruned size).
#[derive(Debug, Clone)]
struct Workload {
    alphabet: usize,
    training: Vec<Vec<u16>>,
    probe: Vec<u16>,
    max_depth: usize,
    significance: u64,
    smoothing: Option<f64>,
    prune_fraction: Option<f64>,
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (2usize..8).prop_flat_map(|alphabet| {
        let sym = 0..alphabet as u16;
        (
            prop::collection::vec(prop::collection::vec(sym.clone(), 5..60), 1..5),
            prop::collection::vec(sym, 0..80),
            1usize..6,
            1u64..5,
            prop::option::of(1e-4f64..0.02),
            prop::option::of(0.3f64..0.9),
        )
            .prop_map(
                move |(training, probe, max_depth, significance, smoothing, prune_fraction)| {
                    Workload {
                        alphabet,
                        training,
                        probe,
                        max_depth,
                        significance,
                        smoothing,
                        prune_fraction,
                    }
                },
            )
    })
}

/// Builds the PST and background model a workload describes.
fn build(w: &Workload) -> (Pst, BackgroundModel) {
    let mut params = PstParams::default()
        .with_max_depth(w.max_depth)
        .with_significance(w.significance);
    params.smoothing = w.smoothing;
    let mut pst = Pst::new(w.alphabet, params);
    for seq in &w.training {
        pst.add_sequence(&Sequence::new(seq.iter().map(|&s| Symbol(s)).collect()));
    }
    if let Some(fraction) = w.prune_fraction {
        pst.prune_to((pst.bytes() as f64 * fraction) as usize);
    }
    // A non-uniform background: symbol frequencies of the training data,
    // exactly what the driver fits from a database.
    let seqs: Vec<Sequence> = w
        .training
        .iter()
        .map(|seq| Sequence::new(seq.iter().map(|&s| Symbol(s)).collect()))
        .collect();
    let background = BackgroundModel::fit(w.alphabet, seqs.iter());
    (pst, background)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tentpole contract: interpreted and compiled similarity are
    /// byte-identical on arbitrary models (smoothed or not, pruned or
    /// not) and arbitrary probes — same max log-ratio bits, same segment.
    #[test]
    fn compiled_similarity_is_byte_identical(w in arb_workload()) {
        let (pst, background) = build(&w);
        let probe: Vec<Symbol> = w.probe.iter().map(|&s| Symbol(s)).collect();
        let interpreted = max_similarity_pst(&pst, &background, &probe);
        let compiled = CompiledPst::compile(&pst, &background);
        let fast = max_similarity_compiled(&compiled, &probe);
        prop_assert_eq!(
            interpreted.log_sim.to_bits(),
            fast.log_sim.to_bits(),
            "log_sim bits diverge: interpreted {} vs compiled {}",
            interpreted.log_sim,
            fast.log_sim
        );
        prop_assert_eq!(interpreted.start, fast.start);
        prop_assert_eq!(interpreted.end, fast.end);
    }

    /// Early-exit contract: for any threshold, the bounded scan either
    /// returns the exact result bit-for-bit, or prunes a pair whose true
    /// similarity really is below the threshold — a pruned pair can never
    /// hide a would-be join.
    #[test]
    fn early_exit_never_lies(w in arb_workload(), threshold in -5.0f64..200.0) {
        let (pst, background) = build(&w);
        let probe: Vec<Symbol> = w.probe.iter().map(|&s| Symbol(s)).collect();
        let exact = max_similarity_pst(&pst, &background, &probe);
        let compiled = CompiledPst::compile(&pst, &background);
        match max_similarity_compiled_bounded(&compiled, &probe, threshold) {
            BoundedSimilarity::Exact(sim) => {
                prop_assert_eq!(sim.log_sim.to_bits(), exact.log_sim.to_bits());
                prop_assert_eq!((sim.start, sim.end), (exact.start, exact.end));
            }
            BoundedSimilarity::Pruned => {
                prop_assert!(
                    exact.log_sim < threshold,
                    "pruned a pair scoring {} >= threshold {}",
                    exact.log_sim,
                    threshold
                );
            }
        }
    }
}
