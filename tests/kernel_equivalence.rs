//! The kernel-equivalence gate: the four scan kernels behind
//! `--scan-kernel` form a matrix of contracts, and every entry is proven
//! here on random PSTs — before and after pruning, smoothed or not.
//!
//! - **interpreted ↔ compiled**: byte-identical (`f64::to_bits`, not an
//!   epsilon) — same max log-ratio bits, same segment.
//! - **compiled ↔ batched**: byte-identical per lane, including *which*
//!   lanes the threshold early-exit prunes; the batch driver only
//!   interleaves lanes, it never changes a lane's arithmetic.
//! - **quantized ↔ exact**: deterministic, and within the proven error
//!   bound `scale · (⌈len/2⌉ + 1)` of the exact score; threshold
//!   decisions agree whenever the exact score clears the threshold by
//!   more than the bound.
//! - **early exit (both exact and quantized)**: may only skip pairs that
//!   are provably below the threshold — a pruned pair can never hide a
//!   would-be join.
//!
//! A full-pipeline matrix at the bottom seals the same contracts
//! end-to-end through seeding, re-clustering, and the final sweep.

use proptest::prelude::*;

use cluseq::core::{
    max_similarity_compiled, max_similarity_compiled_batch, max_similarity_compiled_bounded,
    max_similarity_pst, max_similarity_quantized, max_similarity_quantized_batch,
    max_similarity_quantized_bounded, BoundedSimilarity,
};
use cluseq::prelude::*;
use cluseq_test_utils::{arb_pst_workload, clustered_db, observe, PstWorkload};

/// The lanes a workload feeds through the batch drivers: the probe, every
/// training sequence re-used as a probe, and an empty lane — enough shape
/// variety to exercise lanes retiring at different positions.
fn lanes_of(w: &PstWorkload) -> Vec<Vec<Symbol>> {
    let mut lanes = vec![w.probe_symbols()];
    for seq in &w.training {
        lanes.push(seq.iter().map(|&s| Symbol(s)).collect());
    }
    lanes.push(Vec::new());
    lanes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// interpreted ↔ compiled: byte-identical on arbitrary models
    /// (smoothed or not, pruned or not) and arbitrary probes — same max
    /// log-ratio bits, same segment.
    #[test]
    fn compiled_similarity_is_byte_identical(w in arb_pst_workload()) {
        let (pst, background) = w.build();
        let probe = w.probe_symbols();
        let interpreted = max_similarity_pst(&pst, &background, &probe);
        let compiled = CompiledPst::compile(&pst, &background);
        let fast = max_similarity_compiled(&compiled, &probe);
        prop_assert_eq!(
            interpreted.log_sim.to_bits(),
            fast.log_sim.to_bits(),
            "log_sim bits diverge: interpreted {} vs compiled {}",
            interpreted.log_sim,
            fast.log_sim
        );
        prop_assert_eq!(interpreted.start, fast.start);
        prop_assert_eq!(interpreted.end, fast.end);
    }

    /// Early-exit contract: for any threshold, the bounded scan either
    /// returns the exact result bit-for-bit, or prunes a pair whose true
    /// similarity really is below the threshold.
    #[test]
    fn early_exit_never_lies(w in arb_pst_workload(), threshold in -5.0f64..200.0) {
        let (pst, background) = w.build();
        let probe = w.probe_symbols();
        let exact = max_similarity_pst(&pst, &background, &probe);
        let compiled = CompiledPst::compile(&pst, &background);
        match max_similarity_compiled_bounded(&compiled, &probe, threshold) {
            BoundedSimilarity::Exact(sim) => {
                prop_assert_eq!(sim.log_sim.to_bits(), exact.log_sim.to_bits());
                prop_assert_eq!((sim.start, sim.end), (exact.start, exact.end));
            }
            BoundedSimilarity::Pruned => {
                prop_assert!(
                    exact.log_sim < threshold,
                    "pruned a pair scoring {} >= threshold {}",
                    exact.log_sim,
                    threshold
                );
            }
        }
    }

    /// compiled ↔ batched: every lane of the batch driver is
    /// byte-identical to the single-sequence scan of that lane — same
    /// bits, same segment, and the *same* prune verdicts — for any
    /// threshold and any mix of lane lengths (including an empty lane).
    #[test]
    fn batched_scan_is_byte_identical_per_lane(
        w in arb_pst_workload(),
        threshold in prop::option::of(-5.0f64..200.0),
    ) {
        let (pst, background) = w.build();
        let compiled = CompiledPst::compile(&pst, &background);
        let lanes = lanes_of(&w);
        let refs: Vec<&[Symbol]> = lanes.iter().map(Vec::as_slice).collect();
        let batch = max_similarity_compiled_batch(&compiled, &refs, threshold);
        prop_assert_eq!(batch.len(), refs.len());
        for (lane, got) in batch.iter().enumerate() {
            let single = match threshold {
                Some(t) => max_similarity_compiled_bounded(&compiled, refs[lane], t),
                None => BoundedSimilarity::Exact(max_similarity_compiled(&compiled, refs[lane])),
            };
            match (got, &single) {
                (BoundedSimilarity::Exact(b), BoundedSimilarity::Exact(s)) => {
                    prop_assert_eq!(
                        b.log_sim.to_bits(),
                        s.log_sim.to_bits(),
                        "lane {} bits diverge: batched {} vs single {}",
                        lane,
                        b.log_sim,
                        s.log_sim
                    );
                    prop_assert_eq!((b.start, b.end), (s.start, s.end), "lane {} segment", lane);
                }
                (BoundedSimilarity::Pruned, BoundedSimilarity::Pruned) => {}
                (b, s) => {
                    prop_assert!(false, "lane {lane} verdicts diverge: batched {b:?} vs single {s:?}");
                }
            }
        }
    }

    /// quantized ↔ exact: the quantized score lands within the proven
    /// bound `scale · (⌈len/2⌉ + 1)` of the exact score, and the `-∞`
    /// verdict (no scorable segment) round-trips exactly — quantization
    /// can blur a score but never invent or destroy one.
    #[test]
    fn quantized_error_is_within_the_proven_bound(w in arb_pst_workload()) {
        let (pst, background) = w.build();
        let probe = w.probe_symbols();
        let exact = max_similarity_pst(&pst, &background, &probe);
        let quantized = CompiledPst::compile(&pst, &background).quantize();
        let approx = max_similarity_quantized(&quantized, &probe);
        if exact.log_sim.is_infinite() {
            prop_assert!(
                approx.log_sim.is_infinite() && approx.log_sim < 0.0,
                "exact is -inf but quantized scored {}",
                approx.log_sim
            );
        } else {
            let bound = quantized.error_bound(probe.len());
            prop_assert!(
                (exact.log_sim - approx.log_sim).abs() <= bound,
                "quantized error {} exceeds the proven bound {} (exact {}, quantized {})",
                (exact.log_sim - approx.log_sim).abs(),
                bound,
                exact.log_sim,
                approx.log_sim
            );
        }
    }

    /// Threshold-decision agreement: whenever the exact score clears (or
    /// misses) the threshold by more than the error bound, the quantized
    /// kernel makes the *same* join/reject decision. Disagreement is only
    /// possible inside the bound-wide band around the threshold — which
    /// is exactly what EXPERIMENTS.md's methodology section documents.
    #[test]
    fn threshold_decisions_agree_outside_the_error_bound(
        w in arb_pst_workload(),
        threshold in -5.0f64..200.0,
    ) {
        let (pst, background) = w.build();
        let probe = w.probe_symbols();
        let exact = max_similarity_pst(&pst, &background, &probe);
        let quantized = CompiledPst::compile(&pst, &background).quantize();
        let approx = max_similarity_quantized(&quantized, &probe);
        let bound = quantized.error_bound(probe.len());
        if (exact.log_sim - threshold).abs() > bound {
            prop_assert_eq!(
                approx.log_sim >= threshold,
                exact.log_sim >= threshold,
                "decisions diverge outside the band: exact {} vs quantized {} at threshold {} (bound {})",
                exact.log_sim,
                approx.log_sim,
                threshold,
                bound
            );
        }
    }

    /// Quantized early-exit contract (slack-free by construction — the
    /// integer bound is exact): the bounded scan either reproduces the
    /// unbounded quantized result bit-for-bit, or prunes a pair whose
    /// quantized score really is below the threshold.
    #[test]
    fn quantized_early_exit_never_lies(
        w in arb_pst_workload(),
        threshold in -5.0f64..200.0,
    ) {
        let (pst, background) = w.build();
        let probe = w.probe_symbols();
        let quantized = CompiledPst::compile(&pst, &background).quantize();
        let full = max_similarity_quantized(&quantized, &probe);
        match max_similarity_quantized_bounded(&quantized, &probe, threshold) {
            BoundedSimilarity::Exact(sim) => {
                prop_assert_eq!(sim.log_sim.to_bits(), full.log_sim.to_bits());
                prop_assert_eq!((sim.start, sim.end), (full.start, full.end));
            }
            BoundedSimilarity::Pruned => {
                prop_assert!(
                    full.log_sim < threshold,
                    "pruned a pair whose quantized score {} >= threshold {}",
                    full.log_sim,
                    threshold
                );
            }
        }
    }

    /// quantized batch ↔ quantized single: the integer batch driver is
    /// byte-identical per lane to the single-sequence quantized scan,
    /// prune verdicts included.
    #[test]
    fn quantized_batch_is_byte_identical_per_lane(
        w in arb_pst_workload(),
        threshold in prop::option::of(-5.0f64..200.0),
    ) {
        let (pst, background) = w.build();
        let quantized = CompiledPst::compile(&pst, &background).quantize();
        let lanes = lanes_of(&w);
        let refs: Vec<&[Symbol]> = lanes.iter().map(Vec::as_slice).collect();
        let batch = max_similarity_quantized_batch(&quantized, &refs, threshold);
        prop_assert_eq!(batch.len(), refs.len());
        for (lane, got) in batch.iter().enumerate() {
            let single = match threshold {
                Some(t) => max_similarity_quantized_bounded(&quantized, refs[lane], t),
                None => {
                    BoundedSimilarity::Exact(max_similarity_quantized(&quantized, refs[lane]))
                }
            };
            match (got, &single) {
                (BoundedSimilarity::Exact(b), BoundedSimilarity::Exact(s)) => {
                    prop_assert_eq!(b.log_sim.to_bits(), s.log_sim.to_bits(), "lane {}", lane);
                    prop_assert_eq!((b.start, b.end), (s.start, s.end), "lane {} segment", lane);
                }
                (BoundedSimilarity::Pruned, BoundedSimilarity::Pruned) => {}
                (b, s) => {
                    prop_assert!(false, "lane {lane} verdicts diverge: batched {b:?} vs single {s:?}");
                }
            }
        }
    }
}

// ---- full-pipeline matrix ----------------------------------------------

fn pipeline_params(mode: ScanMode, kernel: ScanKernel, threads: usize) -> CluseqParams {
    CluseqParams::default()
        .with_initial_clusters(3)
        .with_significance(6)
        .with_max_depth(5)
        .with_max_iterations(10)
        .with_seed(5)
        .with_scan_mode(mode)
        .with_scan_kernel(kernel)
        .with_threads(threads)
}

/// End-to-end seal on the exact side of the matrix: under both scan
/// modes, the interpreted, compiled, and batched kernels produce
/// byte-identical outcomes — memberships, thresholds (as raw bits),
/// history — at every thread count.
#[test]
fn full_pipeline_exact_kernels_are_byte_identical() {
    let db = clustered_db(120, 3, 90, 30, 0.05, 77);
    for mode in [ScanMode::Incremental, ScanMode::Snapshot] {
        let reference =
            observe(&Cluseq::new(pipeline_params(mode, ScanKernel::Compiled, 1)).run(&db));
        assert!(
            !reference.memberships.is_empty(),
            "{mode:?}: the reference run found no clusters — the matrix \
             comparison would be vacuous"
        );
        for kernel in [
            ScanKernel::Interpreted,
            ScanKernel::Compiled,
            ScanKernel::Batched,
        ] {
            for threads in [1usize, 4] {
                let got = observe(&Cluseq::new(pipeline_params(mode, kernel, threads)).run(&db));
                assert_eq!(
                    got, reference,
                    "{mode:?}/{kernel:?} with {threads} threads diverged from \
                     the compiled serial run"
                );
            }
        }
    }
}

/// End-to-end seal on the quantized corner: the quantized kernel is a
/// *deterministic* approximation — its outcome is byte-stable across
/// thread counts and across scan modes' serial/parallel drivers, and it
/// still finds a non-trivial clustering on a plainly clustered workload.
#[test]
fn full_pipeline_quantized_kernel_is_deterministic() {
    let db = clustered_db(120, 3, 90, 30, 0.05, 77);
    for mode in [ScanMode::Incremental, ScanMode::Snapshot] {
        let reference =
            observe(&Cluseq::new(pipeline_params(mode, ScanKernel::Quantized, 1)).run(&db));
        assert!(
            !reference.memberships.is_empty(),
            "{mode:?}: the quantized run found no clusters"
        );
        for threads in [2usize, 4, 8] {
            let got = observe(
                &Cluseq::new(pipeline_params(mode, ScanKernel::Quantized, threads)).run(&db),
            );
            assert_eq!(
                got, reference,
                "{mode:?} quantized run with {threads} threads diverged from \
                 the serial quantized run"
            );
        }
    }
}
