//! Hot-swap and graceful-shutdown suite: a SWAP issued mid-flight under
//! load drops zero requests; every response is attributable to exactly
//! one model generation (the generation id stamped in the response) and
//! is bit-identical to that generation's offline answers; a swap to a
//! corrupt or missing file is rejected with the old model untouched; a
//! SIGHUP reload bumps the generation in place; and graceful shutdown
//! drains every in-flight request with a real scored answer.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use cluseq::core::serve::protocol::{errcode, Request, Response};
use cluseq::core::serve::signal;
use cluseq::prelude::*;

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn workload(seed: u64) -> SequenceDatabase {
    SyntheticSpec {
        sequences: 40,
        clusters: 2,
        avg_len: 50,
        alphabet: 8,
        outlier_fraction: 0.0,
        seed,
    }
    .generate()
}

fn train(db: &SequenceDatabase, seed: u64) -> SavedModel {
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(2)
            .with_significance(4)
            .with_max_depth(5)
            .with_max_iterations(5)
            .with_seed(seed),
    )
    .run(db);
    SavedModel::from_outcome(&outcome)
}

fn save(model: &SavedModel, path: &Path) {
    let mut f = fs::File::create(path).expect("create model file");
    model.save(&mut f).expect("save model");
}

fn start(model_path: &Path, watch_sighup: bool) -> ServerHandle {
    let model = ServeModel::load(model_path, None, ScanKernel::Compiled, 1).expect("load model");
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        max_batch: 8,
        kernel: ScanKernel::Compiled,
        frame_timeout: Duration::from_secs(5),
        watch_sighup,
    };
    Server::start(model, None, &config, None).expect("start server")
}

fn bits(hits: &[(u32, f64)]) -> Vec<(u32, u64)> {
    hits.iter().map(|(k, s)| (*k, s.to_bits())).collect()
}

fn expected_bits(model: &SavedModel, q: &[Symbol]) -> Vec<(u32, u64)> {
    model
        .assign(q)
        .into_iter()
        .map(|(k, s)| (k as u32, s.to_bits()))
        .collect()
}

#[test]
fn swap_under_load_drops_nothing_and_attributes_every_response() {
    let dir = tmpdir("serve-swap-load");
    let db = workload(31);
    let model_a = train(&db, 1);
    let model_b = train(&workload(77), 2);
    let path_a = dir.join("a.cseq");
    let path_b = dir.join("b.cseq");
    save(&model_a, &path_a);
    save(&model_b, &path_b);

    let queries: Arc<Vec<Vec<Symbol>>> = Arc::new(
        (0..db.len())
            .map(|i| db.sequence(i).symbols().to_vec())
            .collect(),
    );
    let expected_a: Vec<_> = queries.iter().map(|q| expected_bits(&model_a, q)).collect();
    let expected_b: Vec<_> = queries.iter().map(|q| expected_bits(&model_b, q)).collect();

    let server = start(&path_a, false);
    let addr = server.addr();
    let stop = Arc::new(AtomicBool::new(false));

    // (query index, answering generation, bit-canonical hits) per response.
    type ClientLog = Vec<(usize, u64, Vec<(u32, u64)>)>;
    let collected: Vec<ClientLog> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..4)
            .map(|c| {
                let queries = Arc::clone(&queries);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("connect");
                    let mut got = Vec::new();
                    let mut i = c; // stagger
                    let mut sent = 0usize;
                    while !stop.load(Ordering::SeqCst) || sent < queries.len() {
                        let qi = i % queries.len();
                        let (generation, hits) = client.assign(&queries[qi]).expect("assign");
                        got.push((qi, generation, bits(&hits)));
                        i += 1;
                        sent += 1;
                    }
                    got
                })
            })
            .collect();

        // Let the clients build up traffic, then swap mid-flight.
        std::thread::sleep(Duration::from_millis(150));
        let mut admin = ServeClient::connect(addr).expect("connect admin");
        let (new_generation, clusters) =
            admin.swap(path_b.to_str().unwrap()).expect("swap succeeds");
        assert_eq!(new_generation, 2);
        assert_eq!(clusters as usize, model_b.cluster_count());
        std::thread::sleep(Duration::from_millis(150));
        stop.store(true, Ordering::SeqCst);
        clients
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect()
    });

    let mut gen1 = 0usize;
    let mut gen2 = 0usize;
    for per_client in &collected {
        let mut last_generation = 0u64;
        for (qi, generation, answer) in per_client {
            // Attributable to exactly one generation, bit-identical to
            // that generation's offline answer.
            match generation {
                1 => {
                    gen1 += 1;
                    assert_eq!(
                        answer, &expected_a[*qi],
                        "generation-1 answer for query {qi}"
                    );
                }
                2 => {
                    gen2 += 1;
                    assert_eq!(
                        answer, &expected_b[*qi],
                        "generation-2 answer for query {qi}"
                    );
                }
                g => panic!("response from unknown generation {g}"),
            }
            // Per-connection generations never go backwards: batches are
            // dispatched in arrival order from a single dispatcher.
            assert!(
                *generation >= last_generation,
                "generation went backwards: {last_generation} -> {generation}"
            );
            last_generation = *generation;
        }
    }
    assert!(gen1 > 0, "no responses from the pre-swap generation");
    assert!(gen2 > 0, "no responses from the post-swap generation");
    server.shutdown();
}

#[test]
fn failed_swap_leaves_old_generation_serving() {
    let dir = tmpdir("serve-swap-reject");
    let db = workload(5);
    let model = train(&db, 3);
    let path = dir.join("model.cseq");
    save(&model, &path);
    let server = start(&path, false);
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    let probe: Vec<Symbol> = db.sequence(0).symbols().to_vec();
    let before = expected_bits(&model, &probe);

    // Missing file.
    let missing = dir.join("nope.cseq");
    match client
        .request(&Request::Swap {
            path: missing.to_str().unwrap().into(),
        })
        .expect("request")
    {
        Response::Error { code, .. } => assert_eq!(code, errcode::SWAP_FAILED),
        other => panic!("expected SWAP_FAILED, got {other:?}"),
    }

    // Corrupt file: valid magic, garbage after.
    let corrupt = dir.join("corrupt.cseq");
    fs::write(&corrupt, b"CSEQ\x01\x00\x00\x00garbage").expect("write corrupt");
    match client
        .request(&Request::Swap {
            path: corrupt.to_str().unwrap().into(),
        })
        .expect("request")
    {
        Response::Error { code, .. } => assert_eq!(code, errcode::SWAP_FAILED),
        other => panic!("expected SWAP_FAILED, got {other:?}"),
    }

    // A checkpoint without --data is also rejected (no background model).
    let not_a_model = dir.join("bogus.cckp");
    fs::write(&not_a_model, b"CCKPxxxx").expect("write bogus checkpoint");
    match client
        .request(&Request::Swap {
            path: not_a_model.to_str().unwrap().into(),
        })
        .expect("request")
    {
        Response::Error { code, .. } => assert_eq!(code, errcode::SWAP_FAILED),
        other => panic!("expected SWAP_FAILED, got {other:?}"),
    }

    // The old generation is untouched and still serving identical bits.
    let (generation, hits) = client.assign(&probe).expect("assign after failed swaps");
    assert_eq!(
        generation, 1,
        "failed swaps must not advance the generation"
    );
    assert_eq!(bits(&hits), before);
    server.shutdown();
}

#[cfg(unix)]
#[test]
fn sighup_reloads_the_model_file_in_place() {
    let dir = tmpdir("serve-swap-sighup");
    let db = workload(13);
    let model_a = train(&db, 1);
    let model_b = train(&workload(99), 2);
    let path = dir.join("live.cseq");
    save(&model_a, &path);

    let server = start(&path, true);
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    assert_eq!(client.info().map(generation_of).expect("info"), 1);

    // Replace the file contents, then poke the process.
    save(&model_b, &path);
    signal::raise_hup();

    // The watcher polls; wait for the generation to move.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let generation = client.info().map(generation_of).expect("info");
        if generation >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "SIGHUP never produced a new generation"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Post-reload answers are the new model's bits.
    let probe: Vec<Symbol> = db.sequence(0).symbols().to_vec();
    let (generation, hits) = client.assign(&probe).expect("assign");
    assert_eq!(generation, 2);
    assert_eq!(bits(&hits), expected_bits(&model_b, &probe));
    server.shutdown();
}

fn generation_of(resp: Response) -> u64 {
    match resp {
        Response::Info { generation, .. } => generation,
        other => panic!("expected INFO, got {other:?}"),
    }
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let dir = tmpdir("serve-swap-drain");
    let db = workload(51);
    let model = train(&db, 3);
    let path = dir.join("model.cseq");
    save(&model, &path);
    let server = start(&path, false);
    let addr = server.addr();

    const CLIENTS: usize = 6;
    // Every client fully writes one request before the main thread calls
    // shutdown; the drain guarantee says each still gets its real scored
    // answer, not an error and not a dropped connection.
    let sent = Arc::new(Barrier::new(CLIENTS + 1));
    let queries: Vec<Vec<Symbol>> = (0..CLIENTS)
        .map(|i| db.sequence(i).symbols().to_vec())
        .collect();
    let expected: Vec<_> = queries.iter().map(|q| expected_bits(&model, q)).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let sent = Arc::clone(&sent);
                let query = queries[c].clone();
                scope.spawn(move || {
                    use std::io::Write;
                    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
                    let frame = Request::Assign { seq: query }.encode_frame();
                    stream.write_all(&frame).expect("write request");
                    stream.flush().expect("flush");
                    sent.wait(); // request is fully on the wire
                    stream
                        .set_read_timeout(Some(Duration::from_secs(20)))
                        .unwrap();
                    let payload = cluseq::core::serve::protocol::read_frame(&mut stream)
                        .expect("read response frame")
                        .expect("response must arrive before close");
                    Response::decode_payload(&payload).expect("decode response")
                })
            })
            .collect();

        sent.wait();
        server.shutdown(); // blocks until drained

        for (c, handle) in handles.into_iter().enumerate() {
            match handle.join().expect("client thread panicked") {
                Response::Assign { generation, hits } => {
                    assert_eq!(generation, 1);
                    assert_eq!(
                        bits(&hits),
                        expected[c],
                        "drained answer for client {c} must be the real scored result"
                    );
                }
                other => panic!("client {c}: expected a scored ASSIGN answer, got {other:?}"),
            }
        }
    });
}

/// After shutdown completes, the port is released and nothing is
/// listening.
#[test]
fn shutdown_releases_the_port() {
    let dir = tmpdir("serve-swap-port");
    let db = workload(61);
    let model = train(&db, 3);
    let path = dir.join("model.cseq");
    save(&model, &path);
    let server = start(&path, false);
    let addr = server.addr();
    let mut client = ServeClient::connect(addr).expect("connect");
    client.shutdown().expect("SHUTDOWN frame acknowledged");
    server.wait(); // returns because the client's SHUTDOWN stopped it
    assert!(
        std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "port still open after drain"
    );
}
