//! Determinism suite for the parallel scoring engine: the full pipeline,
//! run at several thread counts, must produce byte-for-byte identical
//! outcomes.
//!
//! The contract (see DESIGN.md, "Deterministic parallel scoring"): thread
//! count is a *performance* knob, never a *results* knob. For both scan
//! modes, every observable of [`CluseqOutcome`] — memberships, hard
//! assignments, outliers, the final threshold (compared bit-for-bit), and
//! the per-iteration history — must match the single-threaded run
//! exactly. `Snapshot` additionally exercises the parallel score phase of
//! the re-clustering scan itself; `Incremental` keeps the scan serial but
//! threads still fan out seeding, the final sweep, and online scoring.

use cluseq::prelude::*;
use cluseq_test_utils::{clustered_db, observe};

fn workload() -> SequenceDatabase {
    clustered_db(240, 4, 130, 70, 0.05, 58)
}

fn params(mode: ScanMode, threads: usize) -> CluseqParams {
    CluseqParams::default()
        .with_initial_clusters(4)
        .with_significance(8)
        .with_max_depth(6)
        .with_max_iterations(15)
        .with_seed(3)
        .with_scan_mode(mode)
        .with_threads(threads)
}

#[test]
fn pipeline_is_thread_count_invariant_in_both_scan_modes() {
    let db = workload();
    for mode in [ScanMode::Incremental, ScanMode::Snapshot] {
        let reference = observe(&Cluseq::new(params(mode, 1)).run(&db));
        assert!(
            !reference.memberships.is_empty(),
            "{mode:?}: the reference run found no clusters — the invariance \
             check would be vacuous"
        );
        for threads in [2usize, 4, 8] {
            let got = observe(&Cluseq::new(params(mode, threads)).run(&db));
            assert_eq!(
                got, reference,
                "{mode:?} with {threads} threads diverged from the serial run"
            );
        }
    }
}

#[test]
fn incremental_mode_ignores_scan_threads_by_construction() {
    // The paper's order-dependent scan cannot parallelize over sequences;
    // `threads` must only accelerate the phases around it. This is the
    // seed-compatibility guarantee: Incremental output is independent of
    // the threads knob entirely.
    let db = workload();
    let serial = observe(&Cluseq::new(params(ScanMode::Incremental, 1)).run(&db));
    let threaded = observe(&Cluseq::new(params(ScanMode::Incremental, 8)).run(&db));
    assert_eq!(serial, threaded);
}

#[test]
fn online_processing_is_thread_count_invariant() {
    // The streaming extension scores each arrival against every live
    // cluster through the same engine; reports must not depend on threads.
    let db = workload();
    let fresh = clustered_db(60, 4, 130, 70, 0.15, 59);

    let mut reports: Vec<Vec<String>> = Vec::new();
    for threads in [1usize, 4] {
        let outcome = Cluseq::new(params(ScanMode::Snapshot, threads)).run(&db);
        let mut online = OnlineCluseq::from_outcome(
            &outcome,
            &params(ScanMode::Snapshot, threads),
            db.alphabet().len(),
        );
        let log: Vec<String> = (0..fresh.len())
            .map(|i| format!("{:?}", online.process(fresh.sequence(i))))
            .collect();
        reports.push(log);
    }
    assert_eq!(
        reports[0], reports[1],
        "online reports changed with thread count"
    );
}
