//! Serve-path observability suite: the slow-request log survives
//! truncation at every byte (failpoint-driven), the slow threshold is an
//! exact boundary, all new serve counters and histogram totals are
//! bit-identical across `--threads`, the health endpoints answer, and a
//! serve trace file renders offline through `trace-summary`'s renderer.

use std::fs;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use cluseq::core::failpoint::{FailPlan, FailingReader};
use cluseq::core::serve::obs::{ObsConfig, RequestRecord, ServeObs, ServeOp, StageNanos};
use cluseq::core::trace::sink::{read_trace, JsonlSink};
use cluseq::core::trace::{summary, Counter, Gauge, HistKind, TraceSession};
use cluseq::prelude::*;

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn workload(seed: u64) -> SequenceDatabase {
    SyntheticSpec {
        sequences: 40,
        clusters: 2,
        avg_len: 50,
        alphabet: 8,
        outlier_fraction: 0.0,
        seed,
    }
    .generate()
}

fn saved_model(dir: &Path) -> PathBuf {
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(2)
            .with_significance(4)
            .with_max_depth(5)
            .with_max_iterations(5)
            .with_seed(1),
    )
    .run(&workload(31));
    let model = SavedModel::from_outcome(&outcome);
    let path = dir.join("model.cseq");
    let mut f = fs::File::create(&path).expect("create model file");
    model.save(&mut f).expect("save model");
    path
}

fn start_with_obs(model_path: &Path, threads: usize, obs: Arc<ServeObs>) -> ServerHandle {
    let model = ServeModel::load(model_path, None, ScanKernel::Compiled, 1).expect("load model");
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        max_batch: 8,
        kernel: ScanKernel::Compiled,
        frame_timeout: Duration::from_secs(5),
        watch_sighup: false,
    };
    Server::start(model, None, &config, Some(obs)).expect("start server")
}

fn obs_with(config: &ObsConfig) -> Arc<ServeObs> {
    Arc::new(ServeObs::new(TraceSession::in_memory().shared_arc(), config).expect("open obs"))
}

/// One HTTP request over a plain socket; returns (status, body).
fn http(addr: std::net::SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    let text = String::from_utf8_lossy(&raw).into_owned();
    let (head, body) = text.split_once("\r\n\r\n").expect("split head");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status");
    (status, body.to_string())
}

fn queries(db: &SequenceDatabase, n: usize) -> Vec<Vec<Symbol>> {
    (0..n.min(db.len()))
        .map(|i| db.sequence(i).symbols().to_vec())
        .collect()
}

#[test]
fn zero_threshold_logs_every_request_and_trace_renders_offline() {
    let dir = tmpdir("serve-obs-slowlog");
    let model_path = saved_model(&dir);
    let slow_path = dir.join("slow.jsonl");
    let trace_path = dir.join("serve.jsonl");
    let obs = obs_with(&ObsConfig {
        slow_log: Some(slow_path.clone()),
        slow_threshold: Duration::ZERO,
        trace_jsonl: Some(trace_path.clone()),
    });
    let server = start_with_obs(&model_path, 2, Arc::clone(&obs));
    let addr = server.addr();

    let db = workload(31);
    let mut client = ServeClient::connect(addr).expect("connect");
    for q in queries(&db, 4) {
        client.assign(&q).expect("assign");
    }
    client.info().expect("info");
    let (status, _) = http(
        addr,
        "POST /assign HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabab",
    );
    assert_eq!(status, 200);
    server.shutdown();

    // Every request crossed the zero threshold: 4 binary assigns + INFO +
    // 1 HTTP assign.
    let replay = read_trace(&slow_path).expect("read slow log");
    assert_eq!(replay.events.len(), 6, "all six requests logged");
    assert!(replay.events.iter().all(|e| e.kind == "slow_request"));
    let first = &replay.events[0].value;
    for key in ["request_id", "op", "transport", "seq_len", "total_nanos"] {
        assert!(first.get(key).is_some(), "slow record is missing {key}");
    }
    let stages = first.get("stage_nanos").expect("stage breakdown");
    for stage in [
        "accept",
        "decode",
        "queue_wait",
        "batch_form",
        "scan",
        "encode",
        "write_back",
    ] {
        assert!(stages.get(stage).is_some(), "missing stage {stage}");
    }
    let transports: Vec<&str> = replay
        .events
        .iter()
        .filter_map(|e| e.value.get("transport").and_then(|v| v.as_str()))
        .collect();
    assert!(transports.contains(&"binary") && transports.contains(&"http"));

    let t = obs.registry();
    assert_eq!(t.counter(Counter::ServeSlow), 6);
    assert_eq!(t.counter(Counter::ServeAssign), 5);
    assert_eq!(t.counter(Counter::ServeInfo), 1);

    // The serve trace file is a complete offline record: lifecycle events
    // plus the final registry snapshot, rendered by trace-summary.
    let trace = read_trace(&trace_path).expect("read serve trace");
    let kinds: Vec<&str> = trace.events.iter().map(|e| e.kind.as_str()).collect();
    assert!(kinds.contains(&"serve_start"));
    assert!(kinds.contains(&"serve_end"));
    let text = summary::render_summary(&trace);
    assert!(text.contains("serve: "), "{text}");
    assert!(text.contains("serve totals:"), "{text}");
    assert!(text.contains("assign"), "{text}");
    assert!(text.contains("queue_wait"), "{text}");

    // The slow log renders on its own, too.
    let slow_text = summary::render_summary(&read_trace(&slow_path).unwrap());
    assert!(slow_text.contains("slow requests: 6 logged"), "{slow_text}");
}

#[test]
fn slow_log_tail_repairs_after_truncation_at_every_byte() {
    let dir = tmpdir("serve-obs-torn");
    // Build a small canonical slow log directly through the recorder.
    let slow_path = dir.join("canonical.jsonl");
    let obs = obs_with(&ObsConfig {
        slow_log: Some(slow_path.clone()),
        slow_threshold: Duration::ZERO,
        trace_jsonl: None,
    });
    for i in 0..3u64 {
        obs.record(&RequestRecord {
            request_id: i,
            op: ServeOp::Assign,
            transport: "binary",
            generation: Some(1),
            seq_len: 10 + i as usize,
            error: false,
            stages: StageNanos {
                accept: 100,
                decode: 50,
                queue_wait: 1_000 * (i + 1),
                batch_form: 10,
                scan: 5_000,
                encode: 20,
                write_back: 30,
            },
        });
    }
    let canonical = fs::read(&slow_path).expect("read canonical log");
    let full_lines = canonical.iter().filter(|&&b| b == b'\n').count();
    assert_eq!(full_lines, 3);

    // Truncate at every byte offset — produced by reading the canonical
    // bytes through the failpoint injector, the same machinery the
    // checkpoint crash suite sweeps — then reopen, verify the repair, and
    // prove the stream continues past it.
    for cut in 0..=canonical.len() as u64 {
        let mut torn = Vec::new();
        let _ = FailingReader::new(&canonical[..], FailPlan::error_after(cut))
            .read_to_end(&mut torn);
        assert_eq!(torn.len(), cut as usize, "injector cut at {cut}");
        let path = dir.join("torn.jsonl");
        fs::write(&path, &torn).expect("write torn copy");

        let surviving = torn.iter().filter(|&&b| b == b'\n').count();
        {
            let mut sink = JsonlSink::open_append(&path).expect("repair at byte {cut}");
            sink.write_event("{\"event\":\"slow_request\",\"request_id\":99}")
                .expect("append after repair");
        }
        let replay = read_trace(&path)
            .unwrap_or_else(|e| panic!("torn copy at byte {cut} unreadable after repair: {e}"));
        assert_eq!(
            replay.events.len(),
            surviving + 1,
            "complete lines survive the cut at byte {cut}, plus the appended one"
        );
        assert!(!replay.truncated_tail, "repair removed the torn tail");
        let last = replay.events.last().unwrap();
        assert_eq!(last.value.get("request_id").and_then(|v| v.as_u64()), Some(99));
        // Sequence numbers continue from the survivors, never collide.
        let seqs: Vec<u64> = replay.events.iter().map(|e| e.seq).collect();
        let mut deduped = seqs.clone();
        deduped.dedup();
        assert_eq!(seqs, deduped, "strictly advancing seqs at cut {cut}");
    }
}

#[test]
fn slow_threshold_is_an_exact_boundary() {
    let dir = tmpdir("serve-obs-threshold");
    let slow_path = dir.join("slow.jsonl");
    let threshold = Duration::from_micros(500);
    let obs = obs_with(&ObsConfig {
        slow_log: Some(slow_path.clone()),
        slow_threshold: threshold,
        trace_jsonl: None,
    });
    let record = |id: u64, total: u64| RequestRecord {
        request_id: id,
        op: ServeOp::Score,
        transport: "binary",
        generation: Some(1),
        seq_len: 5,
        error: false,
        stages: StageNanos {
            scan: total,
            ..Default::default()
        },
    };
    obs.record(&record(0, 499_999)); // one below: fast
    obs.record(&record(1, 500_000)); // exactly at: slow
    obs.record(&record(2, 500_001)); // above: slow
    assert_eq!(obs.registry().counter(Counter::ServeSlow), 2);
    assert_eq!(obs.registry().counter(Counter::ServeScore), 3);
    let replay = read_trace(&slow_path).expect("read slow log");
    assert_eq!(replay.events.len(), 2, "only at-or-over threshold logged");
    assert_eq!(
        replay.events[0].value.get("total_nanos").and_then(|v| v.as_u64()),
        Some(500_000)
    );
    assert_eq!(
        replay.events[0]
            .value
            .get("threshold_nanos")
            .and_then(|v| v.as_u64()),
        Some(500_000)
    );
}

/// The deterministic half of the observability contract: for the same
/// request sequence, every counter and every histogram's *total
/// observation count* is bit-identical at any `--threads`. (Bucket
/// placement is wall-clock and not part of the contract; neither is the
/// slow counter, which is pinned to zero here via an unreachable
/// threshold.)
#[test]
fn counters_and_histogram_totals_are_identical_across_thread_counts() {
    let dir = tmpdir("serve-obs-threads");
    let model_path = saved_model(&dir);
    let db = workload(31);

    let run = |threads: usize| {
        let obs = obs_with(&ObsConfig {
            slow_log: None,
            slow_threshold: Duration::from_secs(3600),
            trace_jsonl: None,
        });
        let server = start_with_obs(&model_path, threads, Arc::clone(&obs));
        let addr = server.addr();
        let mut client = ServeClient::connect(addr).expect("connect");
        for q in queries(&db, 12) {
            client.assign(&q).expect("assign");
        }
        for q in queries(&db, 5) {
            client.score(&q).expect("score");
        }
        for q in queries(&db, 3) {
            client.anomaly(&q, None).expect("anomaly");
        }
        client.info().expect("info");
        drop(client);
        // One HTTP request with a parse error (unknown symbol) and one
        // unknown path: deterministic error counting on the facade.
        let (status, _) = http(
            addr,
            "POST /assign HTTP/1.1\r\nHost: x\r\nContent-Length: 1\r\n\r\n~",
        );
        assert_eq!(status, 400);
        let (status, _) = http(addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(status, 404);
        server.shutdown();

        let t = obs.registry();
        let counters: Vec<(String, u64)> = Counter::ALL
            .iter()
            .map(|&c| (c.as_str().to_string(), t.counter(c)))
            .collect();
        let hist_totals: Vec<(String, u64)> = HistKind::ALL
            .iter()
            .map(|&h| {
                (
                    h.as_str().to_string(),
                    t.hist_counts(h).iter().sum::<u64>(),
                )
            })
            .collect();
        assert_eq!(t.gauge(Gauge::ServeQueueDepth), 0, "queue drained");
        assert_eq!(t.gauge(Gauge::ServeInFlight), 0, "in-flight balanced");
        (counters, hist_totals)
    };

    let (counters_1, hists_1) = run(1);
    let (counters_4, hists_4) = run(4);
    assert_eq!(counters_1, counters_4, "counters differ across --threads");
    assert_eq!(hists_1, hists_4, "histogram totals differ across --threads");

    // Spot-check the absolute values so the comparison cannot pass
    // vacuously on all-zero registries.
    let get = |list: &[(String, u64)], key: &str| {
        list.iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or_else(|| panic!("missing {key}"))
    };
    assert_eq!(get(&counters_1, "serve_assign_requests"), 13); // 12 binary + 1 http error
    assert_eq!(get(&counters_1, "serve_score_requests"), 5);
    assert_eq!(get(&counters_1, "serve_anomaly_requests"), 3);
    assert_eq!(get(&counters_1, "serve_info_requests"), 1);
    assert_eq!(get(&counters_1, "serve_errors"), 2); // http parse error + 404
    assert_eq!(get(&counters_1, "serve_requests"), 21);
    assert_eq!(get(&counters_1, "serve_slow_requests"), 0);
    assert_eq!(get(&hists_1, "serve_stage_accept"), 22, "all recorded ops");
    // Queue stages are observed for every scoring-op record, including the
    // HTTP parse error (which never reached the queue and observes zero).
    assert_eq!(get(&hists_1, "serve_stage_queue_wait"), 21);
    assert_eq!(get(&hists_1, "serve_assign"), 13);
    assert_eq!(get(&hists_1, "serve_admin"), 1);
}

#[test]
fn health_endpoints_and_metrics_answer_on_the_serve_port() {
    let dir = tmpdir("serve-obs-health");
    let model_path = saved_model(&dir);
    let obs = obs_with(&ObsConfig::default());
    let server = start_with_obs(&model_path, 1, Arc::clone(&obs));
    let addr = server.addr();

    let (status, body) = http(addr, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, body) = http(addr, "GET /readyz HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!((status, body.as_str()), (200, "ready\n"));

    let mut client = ServeClient::connect(addr).expect("connect");
    client
        .assign(&[Symbol(0), Symbol(1)])
        .expect("assign before scrape");
    drop(client);

    let (status, body) = http(addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert_eq!(status, 200);
    for series in [
        "cluseq_serve_assign_requests_total 1",
        "cluseq_serve_queue_depth 0",
        "cluseq_serve_in_flight 0",
        "cluseq_serve_stage_queue_wait_seconds_bucket",
        "cluseq_serve_batch_jobs_sum",
        "cluseq_process_rss_bytes",
    ] {
        assert!(body.contains(series), "missing {series} in:\n{body}");
    }
    server.shutdown();
}
