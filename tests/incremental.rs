//! Incremental-engine suite: turning `CluseqParams::incremental` on must
//! never change any observable of a run — only how much work the run
//! performs — and the delta checkpoints the engine writes must survive a
//! kill at every boundary exactly like the self-contained kind.
//!
//! The contract (see `cluseq_core::incremental`): the similarity cache
//! only ever answers a (sequence, cluster) pair with the bit-identical
//! result a fresh evaluation would produce, so the incremental run is
//! byte-for-byte the full run — memberships, thresholds (compared as raw
//! bits), history, and per-iteration telemetry. The savings show up
//! solely in the `pairs_reused` / `clusters_dirty` / `pst_recompiles`
//! counters, which this suite also pins down: zero with the engine off,
//! and ≥ 5× reuse at the converged steady state with it on.

use std::fs;
use std::path::{Path, PathBuf};

use cluseq::prelude::*;
use cluseq_test_utils::{clustered_db, observe};
use proptest::prelude::*;

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("incremental")
        .join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn workload() -> SequenceDatabase {
    clustered_db(120, 3, 90, 30, 0.05, 77)
}

fn params(mode: ScanMode, kernel: ScanKernel, threads: usize) -> CluseqParams {
    CluseqParams::default()
        .with_initial_clusters(3)
        .with_significance(6)
        .with_max_depth(5)
        .with_max_iterations(10)
        .with_seed(5)
        .with_scan_mode(mode)
        .with_scan_kernel(kernel)
        .with_threads(threads)
}

// ---- byte-identity -----------------------------------------------------

/// The tentpole invariant: across both scan modes, both kernels, and
/// serial/parallel scoring, the incremental engine reproduces the full
/// rescoring run exactly. The full reference is computed once per
/// (mode, kernel) at one thread — determinism across threads is already
/// proven by the determinism suite, so any incremental divergence at four
/// threads is the cache's fault, not the thread pool's.
#[test]
fn incremental_runs_are_byte_identical_to_full_rescoring() {
    let db = workload();
    for mode in [ScanMode::Incremental, ScanMode::Snapshot] {
        for kernel in [ScanKernel::Interpreted, ScanKernel::Compiled] {
            let reference = observe(&Cluseq::new(params(mode, kernel, 1)).run(&db));
            assert!(
                !reference.memberships.is_empty(),
                "{mode:?}/{kernel:?}: the reference run found no clusters — \
                 the comparison would be vacuous"
            );
            for threads in [1usize, 4] {
                let incr = observe(
                    &Cluseq::new(params(mode, kernel, threads).with_incremental(true)).run(&db),
                );
                assert_eq!(
                    incr, reference,
                    "{mode:?}/{kernel:?} with {threads} threads: the \
                     incremental engine changed the clustering"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property form of the same invariant on arbitrary small workloads
    /// and seeds: whatever the data looks like, cache reuse must be
    /// invisible in the outcome.
    #[test]
    fn incremental_matches_full_on_arbitrary_workloads(
        (sequences, clusters, alphabet, data_seed) in
            (30usize..70, 2usize..4, 6u64..24, 0u64..500),
        run_seed in 0u64..100,
        snapshot in proptest::bool::ANY,
        compiled in proptest::bool::ANY,
        threads in 1usize..5,
    ) {
        let db = clustered_db(sequences, clusters, 40, alphabet as usize, 0.0, data_seed);
        let p = CluseqParams::default()
            .with_initial_clusters(2)
            .with_significance(4)
            .with_max_depth(4)
            .with_max_iterations(6)
            .with_seed(run_seed)
            .with_scan_mode(if snapshot { ScanMode::Snapshot } else { ScanMode::Incremental })
            .with_scan_kernel(if compiled { ScanKernel::Compiled } else { ScanKernel::Interpreted })
            .with_threads(threads);

        let full = observe(&Cluseq::new(p.clone()).run(&db));
        let incr = observe(&Cluseq::new(p.with_incremental(true)).run(&db));
        prop_assert_eq!(incr, full);
    }
}

// ---- counter accounting ------------------------------------------------

/// With the engine off, the three incremental counters stay hard zero in
/// every iteration record — the v1/v2 golden fixtures rely on this (their
/// decode defaults the fields to 0, which must equal a fresh run's value).
#[test]
fn counters_are_zero_with_the_engine_off() {
    let db = workload();
    let mut report = RunReport::new();
    Cluseq::new(params(ScanMode::Incremental, ScanKernel::Compiled, 1))
        .run_observed(&db, &mut report);
    assert!(!report.iterations.is_empty());
    for rec in &report.iterations {
        assert_eq!(rec.scan.pairs_reused, 0, "iteration {}", rec.iteration);
        assert_eq!(rec.scan.clusters_dirty, 0, "iteration {}", rec.iteration);
        assert_eq!(rec.scan.pst_recompiles, 0, "iteration {}", rec.iteration);
    }
}

/// The work accounting balances: in every iteration, the pairs the
/// incremental run scored plus the pairs it answered from the cache equal
/// the pairs the full run scored — the cache only substitutes for work,
/// it never creates or hides any. All the scan's *observable* metrics
/// (joins, membership changes) are identical.
#[test]
fn reused_plus_scored_equals_the_full_runs_work() {
    let db = workload();
    let p = params(ScanMode::Incremental, ScanKernel::Compiled, 1);

    let mut full = RunReport::new();
    Cluseq::new(p.clone()).run_observed(&db, &mut full);
    let mut incr = RunReport::new();
    Cluseq::new(p.with_incremental(true)).run_observed(&db, &mut incr);

    assert_eq!(full.iterations.len(), incr.iterations.len());
    for (f, i) in full.iterations.iter().zip(&incr.iterations) {
        let it = f.iteration;
        assert_eq!(
            i.scan.pairs_scored + i.scan.pairs_reused,
            f.scan.pairs_scored,
            "iteration {it}: scored + reused must equal the full run's work"
        );
        assert_eq!(i.scan.joins, f.scan.joins, "iteration {it}");
        assert_eq!(i.scan.new_joins, f.scan.new_joins, "iteration {it}");
        assert_eq!(
            i.scan.membership_changes, f.scan.membership_changes,
            "iteration {it}"
        );
    }
    let total_reused: u64 = incr.iterations.iter().map(|r| r.scan.pairs_reused).sum();
    assert!(
        total_reused > 0,
        "the run never reused a single pair — the cache never warmed up \
         and the suite is not exercising the engine"
    );
}

/// The acceptance bar: once the clustering converges, scans run almost
/// entirely from the cache. This workload (more planted clusters, so the
/// stable majority dominates any cluster still absorbing members) reaches
/// a fixpoint whose final scan follows an iteration that changed no
/// model — nearly every pair is answered from its column, at least 5×
/// more reused than freshly scored.
#[test]
fn converged_steady_state_reuses_at_least_five_to_one() {
    let db = clustered_db(320, 8, 90, 30, 0.02, 77);
    let mut report = RunReport::new();
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(8)
            .with_significance(8)
            .with_max_depth(6)
            .with_max_iterations(15)
            .with_seed(3)
            .with_incremental(true),
    )
    .run_observed(&db, &mut report);
    assert!(
        outcome.iterations < 15,
        "the workload must converge before the iteration cap, or no \
         steady-state iteration exists to measure"
    );

    let last = report.iterations.last().expect("at least one iteration");
    assert!(
        last.scan.pairs_reused > 0 && last.scan.pairs_reused >= 5 * last.scan.pairs_scored,
        "steady-state scan must reuse at least 5x what it scores; got \
         {} reused vs {} scored",
        last.scan.pairs_reused,
        last.scan.pairs_scored
    );
}

// ---- delta checkpoints under crashes -----------------------------------

/// Structural identity of two outcomes (the crash-recovery suite's shape).
fn assert_same_outcome(golden: &CluseqOutcome, resumed: &CluseqOutcome, what: &str) {
    assert_eq!(golden.iterations, resumed.iterations, "{what}: iterations");
    assert_eq!(
        golden.final_log_t.to_bits(),
        resumed.final_log_t.to_bits(),
        "{what}: final threshold"
    );
    assert_eq!(golden.history, resumed.history, "{what}: history");
    assert_eq!(
        golden.best_cluster, resumed.best_cluster,
        "{what}: best_cluster"
    );
    assert_eq!(golden.outliers, resumed.outliers, "{what}: outliers");
    for (g, r) in golden.clusters.iter().zip(&resumed.clusters) {
        assert_eq!(g.id, r.id, "{what}: cluster id");
        assert_eq!(g.members, r.members, "{what}: cluster members");
    }
}

fn checkpoint_paths(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .expect("read checkpoint dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    files.sort();
    files
}

/// Kill-at-every-boundary over *delta* checkpoints: an incremental run
/// checkpointing every iteration writes one self-contained file (the
/// first boundary) followed by deltas; resolving each boundary through
/// its base chain and resuming must reproduce the uninterrupted run bit
/// for bit, telemetry counters included (the resume also restores the
/// similarity cache, so even `pairs_reused` must match).
fn kill_at_every_delta_boundary(mode: ScanMode, threads: usize, name: &str) {
    let dir = tmpdir(name);
    let db = workload();
    let p = params(mode, ScanKernel::Compiled, threads)
        .with_incremental(true)
        .with_checkpoints(&dir, 1);

    let mut golden_report = RunReport::new();
    let golden = Cluseq::new(p).run_observed(&db, &mut golden_report);
    let golden_counters = golden_report.counters_json();

    let files = checkpoint_paths(&dir);
    assert_eq!(files.len(), golden.iterations);
    assert!(files.len() >= 2, "the sweep needs several boundaries");

    // The on-disk framing: the first boundary is self-contained, every
    // later one is a delta the bare reader refuses by name.
    let first = fs::read(&files[0]).expect("read first boundary");
    Checkpoint::load(&mut first.as_slice()).expect("the first boundary is self-contained");
    for path in &files[1..] {
        let bytes = fs::read(path).expect("read boundary");
        let err = Checkpoint::load(&mut bytes.as_slice())
            .expect_err("a later boundary of an incremental run is a delta");
        assert!(
            err.to_string().contains("delta"),
            "{}: undescriptive refusal: {err}",
            path.display()
        );
    }

    // Resolve every boundary through its base chain *before* resuming —
    // resumed runs rewrite later boundary files in the same directory.
    let resolved: Vec<Checkpoint> = files
        .iter()
        .map(|p| Checkpoint::load_path(p).expect("every boundary resolves through its chain"))
        .collect();

    for (path, ckpt) in files.iter().zip(resolved) {
        let what = path.display().to_string();
        ckpt.verify_database(&db)
            .unwrap_or_else(|e| panic!("{what}: guard rejected the original database: {e}"));
        let mut report = RunReport::new();
        let resumed = Cluseq::resume_observed(ckpt, &db, &mut report);
        assert_same_outcome(&golden, &resumed, &what);
        assert_eq!(
            golden_counters,
            report.counters_json(),
            "{what}: resumed telemetry counters must be byte-identical"
        );
    }
}

#[test]
fn kill_at_every_delta_boundary_incremental_t1() {
    kill_at_every_delta_boundary(ScanMode::Incremental, 1, "kill-delta-incremental-t1");
}

#[test]
fn kill_at_every_delta_boundary_snapshot_t4() {
    kill_at_every_delta_boundary(ScanMode::Snapshot, 4, "kill-delta-snapshot-t4");
}

/// Write-side failpoints on the delta path: an injected failure mid-write
/// never leaves a partial file, never disturbs an existing boundary, and
/// the clean retry produces a delta that still resolves through its base.
#[test]
fn injected_failures_on_delta_writes_never_corrupt_the_chain() {
    let dir = tmpdir("delta-failpoints");
    let db = workload();
    Cluseq::new(
        params(ScanMode::Incremental, ScanKernel::Compiled, 1)
            .with_incremental(true)
            .with_checkpoints(&dir, 1),
    )
    .run(&db);

    let files = checkpoint_paths(&dir);
    assert!(files.len() >= 2);
    let target = files.last().expect("a final boundary").clone();
    let resolved = Checkpoint::load_path(&target).expect("resolves");
    let base = resolved.completed - 1; // every=1: the previous boundary
    let before = fs::read(&target).expect("read the delta as written");

    // The delta re-encodes what the run wrote: every live cluster was
    // dirty relative to the previous boundary or carried unchanged, and
    // the changed set below reproduces that framing byte for byte.
    let changed: std::collections::BTreeSet<usize> = {
        let prev_path = files[files.len() - 2].clone();
        let prev = Checkpoint::load_path(&prev_path).expect("base resolves");
        resolved
            .clusters
            .iter()
            .filter(|c| {
                prev.clusters
                    .iter()
                    .find(|b| b.id == c.id)
                    .is_none_or(|b| b.members != c.members || b.seed != c.seed)
            })
            .map(|c| c.id)
            .collect()
    };

    for k in [0u64, 1, 7, 64, before.len() as u64 / 2] {
        let err = resolved
            .write_atomic_delta_with(&target, base, &changed, &FailPlan::error_after(k))
            .expect_err("a stream cut at byte {k} cannot succeed");
        assert!(
            err.to_string().contains("injected"),
            "byte {k}: unexpected error {err}"
        );
        assert_eq!(
            fs::read(&target).expect("still readable"),
            before,
            "byte {k}: the previous boundary must survive a failed rewrite"
        );
    }

    // The clean retry still resolves through the chain to the same state.
    resolved
        .write_atomic_delta(&target, base, &changed)
        .expect("clean delta write succeeds");
    let reread = Checkpoint::load_path(&target).expect("the rewritten delta resolves");
    assert_eq!(reread.completed, resolved.completed);
    assert_eq!(reread.clusters.len(), resolved.clusters.len());
    for (a, b) in resolved.clusters.iter().zip(&reread.clusters) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.members, b.members);
    }
}

/// Resuming an interrupted incremental run keeps writing *resumable*
/// files: wipe everything after the first (self-contained) boundary,
/// resume, and every later boundary comes back loadable through its
/// chain with the final one at the fixpoint.
#[test]
fn a_resumed_incremental_run_rebuilds_a_loadable_chain() {
    let dir = tmpdir("delta-resume-rebuild");
    let db = workload();
    let p = params(ScanMode::Incremental, ScanKernel::Compiled, 1)
        .with_incremental(true)
        .with_checkpoints(&dir, 1);
    let golden = Cluseq::new(p).run(&db);

    let files = checkpoint_paths(&dir);
    assert!(files.len() >= 2);
    let first = Checkpoint::load_path(&files[0]).expect("first boundary loads");
    for path in &files[1..] {
        fs::remove_file(path).expect("drop later boundary");
    }

    let resumed = Cluseq::resume(first, &db);
    assert_same_outcome(&golden, &resumed, "resume after wipe");

    let after = checkpoint_paths(&dir);
    assert_eq!(
        after.len(),
        files.len(),
        "the resumed run must rewrite every later boundary"
    );
    for path in &after {
        Checkpoint::load_path(path).expect("every rewritten boundary resolves");
    }
    let final_ckpt = Checkpoint::load_path(after.last().expect("final boundary"))
        .expect("fixpoint boundary resolves");
    assert!(final_ckpt.stable);
    assert_eq!(final_ckpt.completed, golden.iterations);
}
