//! Telemetry suite: the run-report counters must inherit the scoring
//! engine's determinism contract, and a report must reconcile exactly with
//! the outcome it observed.
//!
//! The contract (see DESIGN.md, "Telemetry & run reports"): every
//! non-timing field of a [`RunReport`] is a pure function of the run's
//! inputs, so two runs differing only in thread count serialize to
//! byte-identical `counters_json()` for either scan mode. Wall-clock
//! fields live only in `to_json()` and are excluded from comparison.

use cluseq::prelude::*;

fn workload() -> SequenceDatabase {
    SyntheticSpec {
        sequences: 240,
        clusters: 4,
        avg_len: 130,
        alphabet: 70,
        outlier_fraction: 0.05,
        seed: 58,
    }
    .generate()
}

fn params(mode: ScanMode, threads: usize) -> CluseqParams {
    CluseqParams::default()
        .with_initial_clusters(4)
        .with_significance(8)
        .with_max_depth(6)
        .with_max_iterations(15)
        .with_seed(3)
        .with_scan_mode(mode)
        .with_threads(threads)
}

fn observed_run(mode: ScanMode, threads: usize) -> (CluseqOutcome, RunReport) {
    let db = workload();
    let mut report = RunReport::new();
    let outcome = Cluseq::new(params(mode, threads)).run_observed(&db, &mut report);
    (outcome, report)
}

#[test]
fn report_counters_are_byte_identical_across_thread_counts() {
    for mode in [ScanMode::Incremental, ScanMode::Snapshot] {
        let (_, serial) = observed_run(mode, 1);
        let (_, threaded) = observed_run(mode, 4);
        assert!(
            !serial.iterations.is_empty(),
            "{mode:?}: no iterations recorded — the comparison would be vacuous"
        );
        assert_eq!(
            serial.counters_json(),
            threaded.counters_json(),
            "{mode:?}: counters diverged between 1 and 4 threads"
        );
    }
}

#[test]
fn report_reconciles_with_the_outcome() {
    for mode in [ScanMode::Incremental, ScanMode::Snapshot] {
        let (outcome, report) = observed_run(mode, 2);

        // One record per iteration, each agreeing with the history entry.
        assert_eq!(report.iterations.len(), outcome.iterations, "{mode:?}");
        for (record, stats) in report.iterations.iter().zip(&outcome.history) {
            assert_eq!(&record.stats(), stats, "{mode:?}");
        }

        // Cluster lifecycle balances within each iteration and telescopes
        // to the final outcome across the run: total births minus total
        // dismissals is the surviving cluster count.
        let mut born_total = 0usize;
        let mut removed_total = 0usize;
        let mut alive = 0usize;
        for record in &report.iterations {
            assert_eq!(record.clusters_at_start, alive, "{mode:?}");
            assert_eq!(
                record.clusters_at_start + record.seeding.chosen - record.removed_clusters,
                record.clusters_at_end,
                "{mode:?}: lifecycle must balance each iteration"
            );
            born_total += record.seeding.chosen;
            removed_total += record.removed_clusters;
            alive = record.clusters_at_end;
        }
        assert_eq!(born_total - removed_total, alive, "{mode:?}");
        assert_eq!(alive, outcome.cluster_count(), "{mode:?}");

        // Scan work: every (sequence, live cluster) pair scored once.
        let n = workload().len();
        for record in &report.iterations {
            let live = record.clusters_at_start + record.seeding.chosen;
            assert_eq!(
                record.scan.pairs_scored,
                (n * live) as u64,
                "{mode:?} iter {}",
                record.iteration
            );
            // Joins recorded in the scan are at least the new ones.
            assert!(record.scan.joins >= record.scan.new_joins, "{mode:?}");
        }

        // Per-cluster snapshots describe the surviving clusters.
        let last = report.iterations.last().unwrap();
        assert_eq!(last.clusters.len(), last.clusters_at_end, "{mode:?}");
        for snap in &last.clusters {
            assert!(snap.pst_nodes > 0, "{mode:?}: a live PST has a root");
            assert!(snap.pst_bytes > 0, "{mode:?}");
            assert!(snap.exclusive_members <= snap.members, "{mode:?}");
        }

        // Threshold trajectory: records chain before -> after, and the
        // final threshold is the outcome's.
        for pair in report.iterations.windows(2) {
            assert_eq!(
                pair[0].log_t_after.to_bits(),
                pair[1].log_t_before.to_bits(),
                "{mode:?}: threshold must chain across iterations"
            );
        }
        assert_eq!(
            last.log_t_after.to_bits(),
            outcome.final_log_t.to_bits(),
            "{mode:?}"
        );

        // Summary totals.
        let summary = report.summary.as_ref().expect("summary recorded");
        assert_eq!(summary.iterations, outcome.iterations, "{mode:?}");
        assert_eq!(summary.clusters, outcome.cluster_count(), "{mode:?}");
        assert_eq!(summary.outliers, outcome.outliers.len(), "{mode:?}");
    }
}

#[test]
fn full_json_report_is_valid_and_complete() {
    let (_, report) = observed_run(ScanMode::Snapshot, 2);
    let json = report.to_json();

    let value = json::parse(&json).expect("report must be valid JSON");
    let obj = value.as_object().expect("top level is an object");
    let iterations = obj["iterations"].as_array().expect("iterations array");
    assert_eq!(iterations.len(), report.iterations.len());
    for it in iterations {
        let it = it.as_object().expect("iteration record is an object");
        for key in [
            "iteration",
            "clusters_at_start",
            "seeding",
            "scan",
            "removed_clusters",
            "merged_clusters",
            "clusters_at_end",
            "histogram",
            "valley",
            "log_t_before",
            "log_t_after",
            "threshold_moved",
            "clusters",
            "phase_nanos",
        ] {
            assert!(it.contains_key(key), "missing {key}");
        }
        let timings = it["phase_nanos"].as_object().expect("phase timings");
        for phase in [
            "seeding",
            "scan_score",
            "scan_absorb",
            "consolidate",
            "threshold",
            "total",
        ] {
            assert!(timings.contains_key(phase), "missing phase {phase}");
        }
        // The histogram handed to the valley finder is captured in full.
        if let Some(hist) = it["histogram"].as_object() {
            assert!(hist["counts"].as_array().is_some_and(|c| !c.is_empty()));
        }
    }

    // The counters view is valid JSON too, with all wall-clock gone.
    let counters = report.counters_json();
    json::parse(&counters).expect("counters report must be valid JSON");
    assert!(!counters.contains("nanos"));
}

/// A small recursive-descent JSON parser — enough to *validate* report
/// output and navigate objects/arrays, so the test proves syntactic
/// validity without any external dependency.
mod json {
    use std::collections::HashMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(HashMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&HashMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(v) => Some(v),
                _ => None,
            }
        }
    }

    impl std::ops::Index<&str> for Value {
        type Output = Value;
        fn index(&self, key: &str) -> &Value {
            self.as_object()
                .and_then(|m| m.get(key))
                .unwrap_or_else(|| panic!("no key {key:?} in {self:?}"))
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
        if b.get(*pos) == Some(&ch) {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {pos}", ch as char))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
            Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Value::Null),
            Some(_) => parse_number(b, pos),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {pos}"))
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {pos}")),
                    }
                    *pos += 1;
                }
                Some(&c) => {
                    out.push(c as char);
                    *pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {pos}")),
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut map = HashMap::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            map.insert(key, parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
            }
        }
    }
}
