//! Tracing suite: the live trace layer must be a pure observer of the
//! run, and its JSONL stream must survive crashes and resumes.
//!
//! The contract (see DESIGN.md, "Observability"):
//!
//! * clustering output is **byte-identical** with tracing on vs off, for
//!   every scan kernel and thread count;
//! * registry counter totals equal the [`RunReport`] telemetry counters
//!   and are bit-identical across thread counts;
//! * every JSONL event parses, carries its schema's required fields, and
//!   the `seq` numbers increase without gaps;
//! * a crash can tear at most the final line, and both the reader and a
//!   reopening sink tolerate any mid-line truncation;
//! * a resumed run appends to the same file and
//!   [`sink::stitch_iterations`] reconstructs one continuous iteration
//!   history across the splice.

use std::fs;
use std::path::{Path, PathBuf};

use cluseq::core::trace::{sink, Counter, Gauge, HistKind, Phase};
use cluseq::prelude::*;

fn tmpdir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn workload() -> SequenceDatabase {
    SyntheticSpec {
        sequences: 120,
        clusters: 3,
        avg_len: 90,
        alphabet: 30,
        outlier_fraction: 0.05,
        seed: 77,
    }
    .generate()
}

fn params(kernel: ScanKernel, threads: usize) -> CluseqParams {
    CluseqParams::default()
        .with_initial_clusters(3)
        .with_significance(6)
        .with_max_depth(5)
        .with_max_iterations(10)
        .with_seed(5)
        .with_scan_kernel(kernel)
        .with_threads(threads)
}

/// Full structural identity of two outcomes, thresholds compared as raw
/// bits so a one-ulp drift fails.
fn assert_same_outcome(golden: &CluseqOutcome, other: &CluseqOutcome, what: &str) {
    assert_eq!(golden.iterations, other.iterations, "{what}: iterations");
    assert_eq!(
        golden.final_log_t.to_bits(),
        other.final_log_t.to_bits(),
        "{what}: final threshold"
    );
    assert_eq!(golden.history, other.history, "{what}: history");
    assert_eq!(golden.best_cluster, other.best_cluster, "{what}: best");
    assert_eq!(golden.outliers, other.outliers, "{what}: outliers");
    for (g, r) in golden.clusters.iter().zip(&other.clusters) {
        assert_eq!(g.id, r.id, "{what}: cluster id");
        assert_eq!(g.members, r.members, "{what}: cluster members");
    }
}

// ---- tracing is a pure observer ----------------------------------------

/// The acceptance matrix: tracing on vs off across both kernels and 1/4
/// threads, including byte-identity of the telemetry counters.
#[test]
fn traced_run_is_byte_identical_across_kernels_and_threads() {
    let db = workload();
    for kernel in [ScanKernel::Interpreted, ScanKernel::Compiled] {
        for threads in [1, 4] {
            let what = format!("{kernel:?} x {threads} threads");
            let runner = Cluseq::new(params(kernel, threads));

            let mut plain_report = RunReport::new();
            let plain = runner.run_observed(&db, &mut plain_report);

            let session = TraceSession::in_memory();
            let mut traced_report = RunReport::new();
            let traced = runner.run_traced(&db, &mut traced_report, Some(&session));

            assert_same_outcome(&plain, &traced, &what);
            assert_eq!(
                plain_report.counters_json(),
                traced_report.counters_json(),
                "{what}: telemetry counters must not see the tracing"
            );
        }
    }
}

/// Registry totals are deterministic (bit-identical across thread counts)
/// and reconcile with the RunReport's per-iteration counters.
#[test]
fn registry_counters_match_telemetry_and_thread_counts() {
    let db = workload();
    let mut baseline: Option<Vec<u64>> = None;
    for threads in [1, 4] {
        let runner =
            Cluseq::new(params(ScanKernel::Compiled, threads).with_scan_mode(ScanMode::Snapshot));
        let session = TraceSession::in_memory();
        let mut report = RunReport::new();
        let outcome = runner.run_traced(&db, &mut report, Some(&session));

        // Reconcile against the report: iteration-loop scan counters plus
        // the final assignment sweep (n sequences x surviving clusters).
        let scan_pairs: u64 = report.iterations.iter().map(|r| r.scan.pairs_scored).sum();
        let finalize_pairs = (db.len() * outcome.cluster_count()) as u64;
        assert_eq!(
            session.counter(Counter::PairsScored),
            scan_pairs + finalize_pairs,
            "{threads} threads: pairs_scored"
        );
        let scan_pruned: u64 = report.iterations.iter().map(|r| r.scan.pairs_pruned).sum();
        let summary = report.summary.as_ref().expect("summary");
        assert_eq!(
            session.counter(Counter::PairsPruned),
            scan_pruned + summary.pairs_pruned,
            "{threads} threads: pairs_pruned"
        );
        assert_eq!(
            session.counter(Counter::Joins),
            report.iterations.iter().map(|r| r.scan.joins).sum::<u64>(),
        );
        assert_eq!(
            session.counter(Counter::MembershipChanges),
            report
                .iterations
                .iter()
                .map(|r| r.scan.membership_changes as u64)
                .sum::<u64>(),
        );
        assert_eq!(
            session.counter(Counter::SeedsChosen),
            report
                .iterations
                .iter()
                .map(|r| r.seeding.chosen as u64)
                .sum::<u64>(),
        );

        // Gauges hold the final state; spans cover every iteration.
        assert_eq!(
            session.shared().gauge(Gauge::Iteration),
            outcome.iterations as u64
        );
        assert_eq!(
            session.phase_stats(Phase::Iteration).count,
            outcome.iterations as u64
        );
        assert_eq!(session.phase_stats(Phase::Finalize).count, 1);
        assert_eq!(
            session
                .shared()
                .hist_counts(HistKind::IterationWall)
                .iter()
                .sum::<u64>(),
            outcome.iterations as u64
        );

        // All deterministic counters are bit-identical across threads.
        let all: Vec<u64> = Counter::ALL.iter().map(|&c| session.counter(c)).collect();
        match &baseline {
            None => baseline = Some(all),
            Some(b) => assert_eq!(b, &all, "registry diverged between thread counts"),
        }
    }
}

// ---- JSONL stream schema ------------------------------------------------

fn traced_checkpointed_run(dir: &Path, trace_path: &Path) -> CluseqOutcome {
    let db = workload();
    let config = TraceConfig {
        jsonl: Some(trace_path.to_path_buf()),
        metrics_addr: None,
    };
    let session = TraceSession::start(&config).expect("open trace");
    let p = params(ScanKernel::Compiled, 2).with_checkpoints(dir, 1);
    Cluseq::new(p).run_traced(&db, &mut NoopObserver, Some(&session))
}

/// Every event kind appears, parses, and carries its required fields;
/// sequence numbers count up from zero without gaps.
#[test]
fn jsonl_stream_is_schema_valid_with_monotone_seq() {
    let dir = tmpdir("trace-schema");
    let trace_path = dir.join("run.jsonl");
    let outcome = traced_checkpointed_run(&dir.join("ckpts"), &trace_path);

    let replay = sink::read_trace(&trace_path).expect("trace parses");
    assert!(!replay.truncated_tail, "a clean run leaves no torn tail");
    for (i, ev) in replay.events.iter().enumerate() {
        assert_eq!(ev.seq, i as u64, "seq numbers must be gapless");
        let required: &[&str] = match ev.kind.as_str() {
            "run_start" => &[
                "sequences",
                "alphabet_size",
                "threads",
                "scan_mode",
                "scan_kernel",
                "seed",
                "initial_log_t",
            ],
            "iteration" => &[
                "iteration",
                "clusters_at_start",
                "new_clusters",
                "removed_clusters",
                "clusters_live",
                "membership_changes",
                "pairs_scored",
                "pairs_pruned",
                "joins",
                "new_joins",
                "log_t",
                "threshold_moved",
                "phase_nanos",
            ],
            "checkpoint" => &["completed", "bytes", "write_nanos", "ok"],
            "run_end" => &[
                "iterations",
                "clusters",
                "outliers",
                "final_log_t",
                "counters",
                "spans",
            ],
            other => panic!("unexpected event kind {other:?}"),
        };
        for key in required {
            assert!(
                ev.value.get(key).is_some(),
                "{} event missing {key:?}: {:?}",
                ev.kind,
                ev.value
            );
        }
    }

    let kinds: Vec<&str> = replay.events.iter().map(|e| e.kind.as_str()).collect();
    assert_eq!(kinds.first(), Some(&"run_start"));
    assert_eq!(kinds.last(), Some(&"run_end"));
    let iter_events = kinds.iter().filter(|k| **k == "iteration").count();
    assert_eq!(iter_events, outcome.iterations, "one event per iteration");
    assert!(
        kinds.contains(&"checkpoint"),
        "cadence 1 must emit checkpoint events"
    );

    // The final event snapshots the registry; its counter block reconciles
    // with the per-iteration events.
    let run_end = &replay.events.last().unwrap().value;
    let scored_total: f64 = replay
        .events
        .iter()
        .filter(|e| e.kind == "iteration")
        .map(|e| {
            e.value
                .get("pairs_scored")
                .and_then(|v| v.as_f64())
                .unwrap()
        })
        .sum();
    let end_scored = run_end
        .get("counters")
        .and_then(|c| c.get("pairs_scored"))
        .and_then(|v| v.as_f64())
        .expect("run_end counters.pairs_scored");
    assert!(
        end_scored >= scored_total,
        "run_end total {end_scored} must cover the iteration events' {scored_total}"
    );
}

// ---- crash tolerance ----------------------------------------------------

/// A crash mid-write tears at most the final line. Truncating a real
/// trace at *every* byte of its final event must leave a readable file;
/// reopening the sink on it must repair the tail and continue the
/// sequence numbering with no gap.
#[test]
fn torn_tail_is_tolerated_at_every_truncation_point() {
    let dir = tmpdir("trace-torn");
    let trace_path = dir.join("run.jsonl");
    traced_checkpointed_run(&dir.join("ckpts"), &trace_path);

    let bytes = fs::read(&trace_path).expect("read trace");
    let complete = sink::read_trace(&trace_path).expect("clean trace parses");
    let last_line_start = bytes[..bytes.len() - 1]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |i| i + 1);

    for cut in last_line_start + 1..bytes.len() {
        let torn_path = dir.join("torn.jsonl");
        fs::write(&torn_path, &bytes[..cut]).expect("write torn copy");

        let replay = sink::read_trace(&torn_path)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: reader failed: {e}"));
        assert!(replay.truncated_tail, "cut at byte {cut}: tail not flagged");
        assert_eq!(
            replay.events.len(),
            complete.events.len() - 1,
            "cut at byte {cut}: exactly the torn line is dropped"
        );

        // The writing side repairs the same tail and continues the seq.
        let mut reopened = sink::JsonlSink::open_append(&torn_path)
            .unwrap_or_else(|e| panic!("cut at byte {cut}: reopen failed: {e}"));
        let seq = reopened
            .write_event("{\"event\":\"iteration\",\"iteration\":99}")
            .expect("write after repair");
        assert_eq!(
            seq,
            (complete.events.len() - 1) as u64,
            "cut at byte {cut}: sequence must continue after the repair"
        );
        let repaired = sink::read_trace(&torn_path).expect("repaired trace parses");
        assert!(!repaired.truncated_tail);
        assert_eq!(repaired.events.len(), complete.events.len());
    }
}

// ---- resume stitching ---------------------------------------------------

/// A resumed run appends to the original trace file, and the stitched
/// iteration history is continuous — each iteration exactly once, the
/// resumed rewrites winning over the originals.
#[test]
fn resume_appends_and_stitches_one_continuous_history() {
    let dir = tmpdir("trace-stitch");
    let ckpt_dir = dir.join("ckpts");
    let trace_path = dir.join("run.jsonl");
    let db = workload();
    let golden = traced_checkpointed_run(&ckpt_dir, &trace_path);
    assert!(golden.iterations >= 3, "workload too small to be probative");

    // "Crash" after iteration 2: resume from its checkpoint, appending to
    // the same trace file as the interrupted process would.
    let ckpt_path = ckpt_dir.join("cluseq-000002.ckpt");
    let ckpt_bytes = fs::read(&ckpt_path).expect("checkpoint exists");
    let ckpt = Checkpoint::load(&mut ckpt_bytes.as_slice()).expect("loads");
    let session = TraceSession::start(&TraceConfig {
        jsonl: Some(trace_path.clone()),
        metrics_addr: None,
    })
    .expect("reopen trace");
    let resumed = Cluseq::resume_traced(ckpt, &db, &mut NoopObserver, Some(&session));
    drop(session);
    assert_same_outcome(&golden, &resumed, "traced resume");

    let replay = sink::read_trace(&trace_path).expect("spliced trace parses");
    let resumes = replay.events.iter().filter(|e| e.kind == "resume").count();
    assert_eq!(resumes, 1, "one resume marker");
    let resume_ev = replay
        .events
        .iter()
        .find(|e| e.kind == "resume")
        .expect("resume event");
    assert_eq!(
        resume_ev.value.get("completed").and_then(|v| v.as_u64()),
        Some(2)
    );

    // Seq numbers keep counting across the splice.
    for (i, ev) in replay.events.iter().enumerate() {
        assert_eq!(ev.seq, i as u64, "gap at event {i}");
    }

    // Stitched: iterations 0..n exactly once, in order, matching the
    // golden history's deterministic fields.
    let stitched = sink::stitch_iterations(&replay);
    let numbers: Vec<u64> = stitched
        .iter()
        .map(|it| it.get("iteration").and_then(|v| v.as_u64()).unwrap())
        .collect();
    let expect: Vec<u64> = (0..golden.iterations as u64).collect();
    assert_eq!(numbers, expect, "stitched history must be continuous");
    for (it, stats) in stitched.iter().zip(&golden.history) {
        assert_eq!(
            it.get("clusters_live").and_then(|v| v.as_u64()),
            Some(stats.clusters_at_end as u64)
        );
        assert_eq!(
            it.get("log_t").and_then(|v| v.as_f64()).map(f64::to_bits),
            Some(stats.log_t.to_bits()),
            "iteration {}: stitched log_t must be exact",
            stats.iteration
        );
    }
}
