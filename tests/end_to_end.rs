//! End-to-end integration tests: the full pipeline from workload
//! generation through clustering to evaluation, spanning every crate.

use cluseq::prelude::*;

fn eval(db: &SequenceDatabase, outcome: &CluseqOutcome) -> Confusion {
    Confusion::new(
        &db.labels(),
        &outcome.membership_lists(),
        MatchStrategy::Hungarian,
    )
}

#[test]
fn recovers_planted_synthetic_clusters() {
    let db = SyntheticSpec {
        sequences: 300,
        clusters: 5,
        avg_len: 150,
        alphabet: 100,
        outlier_fraction: 0.05,
        seed: 9,
    }
    .generate();
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(1)
            .with_significance(10)
            .with_max_depth(6)
            .with_seed(4),
    )
    .run(&db);
    let c = eval(&db, &outcome);
    assert!(
        outcome.cluster_count() >= 4,
        "found only {} of 5 planted clusters",
        outcome.cluster_count()
    );
    assert!(c.accuracy() > 0.7, "accuracy {}", c.accuracy());
    assert!(
        c.macro_precision() > 0.75,
        "precision {}",
        c.macro_precision()
    );
}

#[test]
fn cluster_count_adapts_regardless_of_initial_k() {
    // Table 5's claim: the final number of clusters is insensitive to the
    // initial k.
    let db = SyntheticSpec {
        sequences: 200,
        clusters: 4,
        avg_len: 120,
        alphabet: 80,
        outlier_fraction: 0.0,
        seed: 21,
    }
    .generate();
    let mut finals = Vec::new();
    for k in [1, 4, 10] {
        let outcome = Cluseq::new(
            CluseqParams::default()
                .with_initial_clusters(k)
                .with_significance(8)
                .with_max_depth(6)
                .with_seed(5),
        )
        .run(&db);
        finals.push(outcome.cluster_count());
    }
    for (&f, k) in finals.iter().zip([1, 4, 10]) {
        assert!(
            (3..=6).contains(&f),
            "initial k = {k} ended at {f} clusters (want ~4); all: {finals:?}"
        );
    }
}

#[test]
fn threshold_converges_from_different_starts() {
    // Table 6's claim: the final t is insensitive to the initial t.
    let db = SyntheticSpec {
        sequences: 200,
        clusters: 4,
        avg_len: 120,
        alphabet: 80,
        outlier_fraction: 0.05,
        seed: 33,
    }
    .generate();
    let mut finals = Vec::new();
    for t0 in [1.05, 2.0, 10.0] {
        let outcome = Cluseq::new(
            CluseqParams::default()
                .with_initial_clusters(4)
                .with_initial_threshold(t0)
                .with_significance(8)
                .with_max_depth(6)
                .with_seed(5),
        )
        .run(&db);
        finals.push(outcome.final_log_t);
    }
    let spread = finals.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
        - finals.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let scale = finals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        spread / scale < 0.5,
        "final log-thresholds diverge too much: {finals:?}"
    );
}

#[test]
fn outliers_are_left_unclustered() {
    let db = SyntheticSpec {
        sequences: 220,
        clusters: 4,
        avg_len: 150,
        alphabet: 100,
        outlier_fraction: 0.10,
        seed: 7,
    }
    .generate();
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(4)
            .with_significance(8)
            .with_max_depth(6)
            .with_seed(2),
    )
    .run(&db);
    // Most planted outliers (label None) stay out of every cluster.
    let outlier_ids: Vec<usize> = db
        .iter()
        .filter(|(_, _, l)| l.is_none())
        .map(|(i, _, _)| i)
        .collect();
    let caught = outlier_ids
        .iter()
        .filter(|&&i| outcome.best_cluster[i].is_none())
        .count();
    assert!(
        caught * 2 > outlier_ids.len(),
        "only {caught} of {} outliers left unclustered",
        outlier_ids.len()
    );
}

#[test]
fn language_corpus_separates() {
    let db = LanguageSpec {
        sentences_per_language: 120,
        noise_sentences: 20,
        // News-length sentences (~150 letters): short memory needs enough
        // signal per sequence for single-seed models to bootstrap.
        words_per_sentence: (20, 40),
        ..Default::default()
    }
    .generate();
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(3)
            .with_significance(10)
            .with_max_depth(4)
            .with_seed(6),
    )
    .run(&db);
    let c = eval(&db, &outcome);
    assert!(
        c.accuracy() > 0.6,
        "language accuracy {} (paper reports ~0.8)",
        c.accuracy()
    );
}

#[test]
fn protein_families_separate() {
    let db = ProteinFamilySpec {
        families: 5,
        size_scale: 0.05,
        seq_len: (120, 250),
        motifs_per_family: 2,
        mutation_rate: 0.10,
        ..Default::default()
    }
    .generate();
    // Tuned like the Table 2/3 reproduction: at this scale the
    // statistically equivalent significance threshold is 1, with the
    // consolidation minimum set separately.
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(5)
            .with_significance(1)
            .with_min_exclusive(3)
            .with_max_depth(8)
            .with_seed(8),
    )
    .run(&db);
    let c = eval(&db, &outcome);
    assert!(
        c.accuracy() > 0.6,
        "protein accuracy {} (paper reports 0.82)",
        c.accuracy()
    );
}

#[test]
fn classify_assigns_fresh_sequences_to_the_right_cluster() {
    let spec = SyntheticSpec {
        sequences: 200,
        clusters: 4,
        avg_len: 150,
        alphabet: 100,
        outlier_fraction: 0.0,
        seed: 17,
    };
    let db = spec.generate();
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(4)
            .with_significance(8)
            .with_max_depth(6)
            .with_seed(3),
    )
    .run(&db);

    // Fresh sequences from the same generators (new RNG stream).
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(999);
    let mut correct = 0;
    let mut total = 0;
    for planted in 0..4u64 {
        let model = ClusterModel::new(100, spec.seed.wrapping_add(planted * 0x51ED));
        // Which outcome cluster corresponds to this planted label? Use the
        // majority of its training members.
        let train_member = db
            .iter()
            .find(|(_, _, l)| *l == Some(planted as u32))
            .map(|(i, _, _)| i)
            .unwrap();
        let Some(expected_cluster) = outcome.best_cluster[train_member] else {
            continue;
        };
        for _ in 0..5 {
            let fresh = model.sample_sequence(150, &mut rng);
            let ranked = outcome.classify(fresh.symbols());
            total += 1;
            if ranked.first().map(|&(k, _)| k) == Some(expected_cluster) {
                correct += 1;
            }
        }
    }
    assert!(
        correct * 3 >= total * 2,
        "only {correct}/{total} fresh sequences classified consistently"
    );
}

#[test]
fn web_sessions_separate_with_a_fixed_threshold() {
    // The intro's "web usage data" domain: small alphabet (10 page types),
    // four behavioural profiles. Small alphabets defeat the histogram
    // valley heuristic (the noise bulk of lucky short matches swallows
    // it), so the threshold is fixed — the paper's user-specified mode.
    let db = WeblogSpec {
        sessions_per_profile: 60,
        session_len: (25, 90),
        seed: 80,
    }
    .generate();
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(4)
            .with_initial_threshold(8.0f64.exp())
            .with_threshold_adjustment(false)
            .with_significance(2)
            .with_min_exclusive(10)
            .with_max_depth(4)
            .with_seed(5),
    )
    .run(&db);
    let c = eval(&db, &outcome);
    assert_eq!(outcome.cluster_count(), 4);
    assert!(c.accuracy() > 0.9, "web-session accuracy {}", c.accuracy());
}

#[test]
fn saved_model_round_trips_through_bytes() {
    let db = SyntheticSpec {
        sequences: 150,
        clusters: 3,
        avg_len: 120,
        alphabet: 60,
        outlier_fraction: 0.0,
        seed: 44,
    }
    .generate();
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(3)
            .with_significance(8)
            .with_max_depth(6)
            .with_seed(2),
    )
    .run(&db);
    let mut buf = Vec::new();
    SavedModel::from_outcome(&outcome).save(&mut buf).unwrap();
    let model = SavedModel::load(&mut buf.as_slice()).unwrap();
    assert_eq!(model.cluster_count(), outcome.cluster_count());
    // Every training sequence classifies identically through the loaded
    // model.
    for i in (0..db.len()).step_by(7) {
        let seq = db.sequence(i).symbols();
        let orig: Vec<usize> = outcome.classify(seq).iter().map(|&(k, _)| k).collect();
        let redo: Vec<usize> = model.classify(seq).iter().map(|&(k, _)| k).collect();
        assert_eq!(orig, redo, "sequence {i}");
    }
}

#[test]
fn overlapping_membership_is_possible() {
    // A sequence genuinely exhibiting two clusters' patterns should be
    // allowed in both (CLUSEQ clusters "possibly overlap").
    let mut texts: Vec<String> = Vec::new();
    for _ in 0..15 {
        texts.push("abababababababababab".into());
        texts.push("cdcdcdcdcdcdcdcdcdcd".into());
    }
    // Chimeric sequences carrying both signatures.
    for _ in 0..3 {
        texts.push("ababababababcdcdcdcdcdcd".into());
    }
    let db = SequenceDatabase::from_strs(texts.iter().map(|s| s.as_str()));
    let outcome = Cluseq::new(
        CluseqParams::default()
            .with_initial_clusters(2)
            .with_significance(4)
            .with_max_depth(5)
            .with_seed(12),
    )
    .run(&db);
    let lists = outcome.membership_lists();
    let chimera_id = 30; // first chimeric sequence
    let homes = lists.iter().filter(|l| l.contains(&chimera_id)).count();
    assert!(
        homes >= 1,
        "the chimera must belong somewhere (ideally both clusters)"
    );
}
